package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentileMS(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		lat  []time.Duration
		q    float64
		want float64
	}{
		{nil, 0.5, 0},
		{[]time.Duration{ms(10)}, 0.5, 10},
		{[]time.Duration{ms(10)}, 0.99, 10},
		{[]time.Duration{ms(30), ms(10), ms(20), ms(40)}, 0.5, 20},
		{[]time.Duration{ms(30), ms(10), ms(20), ms(40)}, 0.99, 40},
	}
	for _, c := range cases {
		if got := percentileMS(c.lat, c.q); got != c.want {
			t.Errorf("percentileMS(%v, %v) = %v, want %v", c.lat, c.q, got, c.want)
		}
	}
}

func TestFairness(t *testing.T) {
	cases := []struct {
		per  map[string]int
		want float64
	}{
		{map[string]int{}, 0},
		{map[string]int{"t0": 10, "t1": 10}, 1},
		{map[string]int{"t0": 20, "t1": 10}, 2},
		{map[string]int{"t0": 20, "t1": 0}, 1e9},
	}
	for _, c := range cases {
		if got := fairness(c.per); got != c.want {
			t.Errorf("fairness(%v) = %v, want %v", c.per, got, c.want)
		}
	}
}

func TestParseLevels(t *testing.T) {
	if lv, err := parseLevels("1, 10,100"); err != nil || len(lv) != 3 || lv[2] != 100 {
		t.Errorf("parseLevels = %v, %v", lv, err)
	}
	for _, bad := range []string{"", "0", "-3", "x", "1,,2"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted", bad)
		}
	}
}

// TestRunLevelClosedLoop drives a level against a stub server and checks
// the accounting: completions across every tenant and both traffic
// kinds, latency percentiles populated, cache hits counted from the
// X-Cache header, and errors split out from completions.
func TestRunLevelClosedLoop(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if r.Header.Get("X-Tenant") == "" {
			t.Error("request without X-Tenant")
		}
		if n%5 == 0 {
			http.Error(w, `{"error":"synthetic"}`, http.StatusInternalServerError)
			return
		}
		if n%3 == 0 {
			w.Header().Set("X-Cache", "hit")
		}
		w.Write([]byte(`{"cut":1}`))
	}))
	defer stub.Close()

	cfg := loadConfig{
		addr:     stub.URL,
		mode:     "sync",
		duration: 300 * time.Millisecond,
		tenants:  2,
		runs:     1,
		cold:     0.5,
		netlist:  []byte(`{}`),
		warmBody: []byte(`{"netlist":{},"sides":[0],"delta":{}}`),
		client:   stub.Client(),
	}
	rep := runLevel(cfg, 4)
	if rep.Concurrency != 4 {
		t.Errorf("concurrency %d", rep.Concurrency)
	}
	if rep.Completed == 0 || rep.Errors == 0 || rep.CacheHits == 0 {
		t.Fatalf("completed %d, errors %d, cacheHits %d — all should be nonzero",
			rep.Completed, rep.Errors, rep.CacheHits)
	}
	if rep.ColdCompleted == 0 || rep.WarmCompleted == 0 {
		t.Errorf("cold %d, warm %d: both traffic kinds should complete",
			rep.ColdCompleted, rep.WarmCompleted)
	}
	if rep.ColdCompleted+rep.WarmCompleted != rep.Completed {
		t.Errorf("cold %d + warm %d != completed %d",
			rep.ColdCompleted, rep.WarmCompleted, rep.Completed)
	}
	if rep.PerTenant["t0"] == 0 || rep.PerTenant["t1"] == 0 {
		t.Errorf("per-tenant counts %v: both tenants should complete", rep.PerTenant)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Errorf("percentiles p50=%v p99=%v", rep.P50MS, rep.P99MS)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput %v", rep.ThroughputRPS)
	}
	if rep.FairnessRatio < 1 || rep.FairnessRatio > 2 {
		t.Errorf("fairness %v for a balanced stub", rep.FairnessRatio)
	}
	// The report row marshals cleanly (the bench script parses it).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncModeUsesBatch checks -mode async submits single-item batch
// requests and treats the streamed line's ok/error as the outcome.
func TestAsyncModeUsesBatch(t *testing.T) {
	var batchCalls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/batch" {
			t.Errorf("async request hit %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		var breq struct {
			Items []json.RawMessage `json:"items"`
		}
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil || len(breq.Items) != 1 {
			t.Errorf("batch body: %v items, err %v", len(breq.Items), err)
		}
		if batchCalls.Add(1)%4 == 0 {
			w.Write([]byte(`{"index":0,"ok":false,"error":"synthetic"}` + "\n"))
			return
		}
		w.Write([]byte(`{"index":0,"job":"j1","ok":true,"result":{"cut":1}}` + "\n"))
	}))
	defer stub.Close()

	cfg := loadConfig{
		addr:     stub.URL,
		mode:     "async",
		duration: 200 * time.Millisecond,
		tenants:  2,
		runs:     1,
		cold:     0.5,
		netlist:  []byte(`{}`),
		warmBody: []byte(`{"netlist":{},"sides":[0],"delta":{}}`),
		client:   stub.Client(),
	}
	rep := runLevel(cfg, 2)
	if rep.Completed == 0 {
		t.Fatal("no async requests completed")
	}
	if rep.Errors == 0 {
		t.Error("ok:false lines should count as errors")
	}
}

// TestSeedsNeverRepeat checks no two compute requests share a seed, so
// none can hit the server's content-addressed result cache.
func TestSeedsNeverRepeat(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	dup := false
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seed := r.URL.Query().Get("seed")
		mu.Lock()
		if seen[seed] {
			dup = true
		}
		seen[seed] = true
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	defer stub.Close()
	cfg := loadConfig{
		addr: stub.URL, mode: "sync", duration: 200 * time.Millisecond, tenants: 1,
		runs: 1, cold: 1.0, netlist: []byte(`{}`), client: stub.Client(),
	}
	rep := runLevel(cfg, 3)
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	mu.Lock()
	defer mu.Unlock()
	if dup {
		t.Error("compute requests repeated a seed")
	}
}

// TestBuildWarmBody checks the base solve's sides are embedded into the
// warm repartition request.
func TestBuildWarmBody(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/partition" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		w.Write([]byte(`{"cut":3,"sides":[0,1,1,0]}`))
	}))
	defer stub.Close()
	cfg := loadConfig{addr: stub.URL, runs: 2, netlist: []byte(`{"nodes":[]}`), client: stub.Client()}
	body, err := buildWarmBody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Sides []int           `json:"sides"`
		Delta json.RawMessage `json:"delta"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Sides) != 4 || len(got.Delta) == 0 {
		t.Errorf("warm body = %s", body)
	}
}
