// Command circgen synthesizes benchmark circuits: either a clone of one of
// the paper's sixteen ACM/SIGDA circuits (-suite <name>) or a custom
// netlist with the given characteristics.
//
// Usage:
//
//	circgen -suite balu -out balu.hgr
//	circgen -nodes 5000 -nets 5200 -pins 18000 -seed 7 -format json -out c.json
//	circgen -scale -nodes 1000000 -seed 7 -out big.hgr
//
// -scale streams a million-node-class circuit (Table-1-like power-law net
// sizes, window locality) straight to the output in .hgr form without ever
// materializing it, so generation needs O(nodes) memory at any size. The
// big fixtures are therefore never checked in: anyone can regenerate them
// bit-identically from (nodes, seed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prop"
	"prop/internal/gen"
)

func main() {
	var (
		suite  = flag.String("suite", "", "suite circuit name (one of: "+strings.Join(prop.BenchmarkNames(), ", ")+")")
		nodes  = flag.Int("nodes", 1000, "node count (custom circuit)")
		nets   = flag.Int("nets", 1050, "net count")
		pins   = flag.Int("pins", 3600, "total pin count")
		spread = flag.Float64("spread", 0, "mean net window spread (0 = default 10)")
		scale  = flag.Bool("scale", false, "streaming scale generator: -nodes and -seed only, .hgr output (nets and pins follow the Table-1 regime)")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "hgr", "output format: hgr, netare, json")
		out    = flag.String("out", "", "output file (default stdout; netare writes <out> and <out>.are)")
		stats  = flag.Bool("stats", false, "print circuit statistics to stderr")
	)
	flag.Parse()

	if *scale {
		if *suite != "" {
			fatal(fmt.Errorf("-scale and -suite are mutually exclusive"))
		}
		if *format != "hgr" {
			fatal(fmt.Errorf("-scale streams .hgr only (got -format %s)", *format))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := gen.WriteScaleHGR(w, gen.ScaleParams{
			Nodes: *nodes, Seed: *seed, MeanSpread: *spread,
		}); err != nil {
			fatal(err)
		}
		return
	}

	var n *prop.Netlist
	var err error
	if *suite != "" {
		n, err = prop.Benchmark(*suite)
	} else {
		n, err = prop.Generate(prop.GenParams{
			Nodes: *nodes, Nets: *nets, Pins: *pins, MeanSpread: *spread, Seed: *seed,
		})
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, n.Stats())
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "hgr":
		err = n.WriteHGR(w)
	case "json":
		err = n.WriteJSON(w)
	case "netare":
		var areW *os.File
		if *out != "" {
			f, cerr := os.Create(*out + ".are")
			if cerr != nil {
				fatal(cerr)
			}
			defer f.Close()
			areW = f
		}
		if areW != nil {
			err = n.WriteNetAre(w, areW)
		} else {
			err = n.WriteNetAre(w, nil)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "circgen:", err)
	os.Exit(1)
}
