// Command tracestat summarizes a propart/propserve JSONL trace file into
// the run report (internal/obs/report): per-phase wall-time tree, top-N
// phases, pass convergence curve, and move/round/flow rates.
//
//	tracestat [-top N] [-json] trace.jsonl
//	tracestat -diff old.jsonl new.jsonl [-wall-pct 25] [-min-wall-ms 5] [-cut-pct 0.5]
//
// With -diff, the two traces are aggregated and compared with per-phase
// thresholds; any regression is printed and the exit status is 1, so a CI
// job can gate on "this change didn't slow any phase past X% or worsen
// the cut past Y%". Comparing a trace against itself reports nothing.
// Reading from "-" takes the trace from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prop/internal/obs/report"
)

func main() {
	top := flag.Int("top", 10, "flattened top-N phase table size (0 disables)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	diff := flag.Bool("diff", false, "compare two traces: tracestat -diff old.jsonl new.jsonl")
	wallPct := flag.Float64("wall-pct", 25, "diff: flag phases whose wall time grew more than this percent")
	minWallMS := flag.Float64("min-wall-ms", 5, "diff: ignore phases shorter than this in the old trace")
	cutPct := flag.Float64("cut-pct", 0.5, "diff: flag a final best cut worse by more than this percent")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: tracestat -diff old.jsonl new.jsonl")
			os.Exit(2)
		}
		oldRep := mustRead(flag.Arg(0))
		newRep := mustRead(flag.Arg(1))
		regs := report.Diff(oldRep, newRep, report.DiffOptions{
			WallPct:   *wallPct,
			MinWallUS: int64(*minWallMS * 1000),
			CutPct:    *cutPct,
		})
		if len(regs) == 0 {
			fmt.Printf("tracestat: no regressions (%s vs %s)\n", flag.Arg(0), flag.Arg(1))
			return
		}
		fmt.Printf("tracestat: %d regression(s) in %s vs %s:\n", len(regs), flag.Arg(1), flag.Arg(0))
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-top N] [-json] trace.jsonl")
		os.Exit(2)
	}
	rep := mustRead(flag.Arg(0))
	var err error
	if *jsonOut {
		err = report.WriteJSON(os.Stdout, rep)
	} else {
		err = report.WriteText(os.Stdout, rep, *top)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
}

// mustRead aggregates one trace file ("-" = stdin) or exits.
func mustRead(path string) *report.RunReport {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	rep, err := report.Read(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %s: %v\n", path, err)
		os.Exit(1)
	}
	if rep.Events == 0 {
		fmt.Fprintf(os.Stderr, "tracestat: %s: empty trace\n", path)
		os.Exit(1)
	}
	return rep
}
