package main

// POST /v1/batch: submit many partition/repartition items in one request
// and stream one NDJSON result line per item as each finishes. Every item
// becomes a durable async job (same journal, same scheduler, same quota
// accounting as /v1/jobs), so a crash mid-batch loses nothing: the
// accepted items finish after restart and are retrievable via
// GET /v1/jobs. The stream is flushed line by line; if the client
// disconnects mid-stream the unfinished items are cancelled.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"prop"
	"prop/internal/jobs"
	"prop/internal/obs"
)

// batchItem is one unit of work in a batch: a netlist to partition (the
// JSON netlist format), or — when delta is set — an incremental
// repartition against an inline base or a finished job.
type batchItem struct {
	Netlist json.RawMessage `json:"netlist,omitempty"`
	Sides   []int           `json:"sides,omitempty"`
	BaseJob string          `json:"base_job,omitempty"`
	Delta   *prop.Delta     `json:"delta,omitempty"`
}

type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchLine is one NDJSON result line. Index identifies the item (lines
// arrive in completion order, not submission order); Job names the
// durable job backing it, when one was accepted.
type batchLine struct {
	Index  int             `json:"index"`
	Job    string          `json:"job,omitempty"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// batchItemPayload validates one item's shape and converts it to the
// journaled payload form. The shared query string rides along so the
// executor re-derives the knobs the same way /v1/jobs does.
func batchItemPayload(rawQuery string, it batchItem) (jobPayload, error) {
	if it.Delta != nil {
		if it.BaseJob == "" && len(it.Netlist) == 0 {
			return jobPayload{}, errors.New("delta item: want base_job or netlist+sides")
		}
		body, err := json.Marshal(repartitionRequest{
			BaseJob: it.BaseJob, Netlist: it.Netlist, Sides: it.Sides, Delta: it.Delta,
		})
		if err != nil {
			return jobPayload{}, err
		}
		return jobPayload{Kind: kindRepartition, Query: rawQuery, Body: body}, nil
	}
	if len(it.Netlist) == 0 {
		return jobPayload{}, errors.New("item: want netlist (JSON netlist format) or delta")
	}
	return jobPayload{Kind: kindPartition, Query: rawQuery, ContentType: "application/json", Body: it.Netlist}, nil
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.gate(w, r, false)
	if !ok {
		return
	}
	// Shared knobs are validated once up front: a bad query fails the
	// whole batch with 400 before any item is accepted.
	req, err := s.decodeQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	raw, err := io.ReadAll(s.limitBody(w, r))
	if err != nil {
		s.failParse(w, err)
		return
	}
	var breq batchRequest
	if err := json.Unmarshal(raw, &breq); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return
	}
	if len(breq.Items) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("body: empty items"))
		return
	}
	if s.batchMax > 0 && len(breq.Items) > s.batchMax {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds limit %d", len(breq.Items), s.batchMax))
		return
	}

	runID := obs.RunID(r.Context())
	// Buffered to the item count so a finishing job never blocks on a
	// slow or gone client; the disconnect path can then abandon the
	// channel safely.
	events := make(chan batchLine, len(breq.Items))
	var immediate []batchLine
	outstanding := map[string]bool{}
	pending := 0
	for i, it := range breq.Items {
		pl, err := batchItemPayload(r.URL.RawQuery, it)
		if err != nil {
			immediate = append(immediate, batchLine{Index: i, Error: err.Error()})
			continue
		}
		// Quota is charged per item, not per request — a 100-item batch
		// spends 100 admission tokens.
		if !s.chargeQuota(tenant) {
			immediate = append(immediate, batchLine{Index: i, Error: fmt.Sprintf("tenant %q over admission quota", tenant)})
			continue
		}
		idx := i
		j, err := s.submitPayload(tenant, pl, req, obs.NewID(), func(final jobs.Job) {
			events <- batchLine{
				Index:  idx,
				Job:    final.ID,
				OK:     final.State == jobs.Done,
				Error:  final.Error,
				Result: json.RawMessage(final.Result),
			}
		})
		if err != nil {
			immediate = append(immediate, batchLine{Index: i, Error: err.Error()})
			continue
		}
		outstanding[j.ID] = true
		pending++
	}
	s.log.Info("batch accepted", "tenant", tenant, "items", len(breq.Items),
		"jobs", pending, "rejected", len(immediate), "run_id", runID)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(line batchLine) {
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Items refused before becoming jobs stream first, then one line per
	// job in completion order.
	for _, line := range immediate {
		writeLine(line)
	}
	for pending > 0 {
		select {
		case <-r.Context().Done():
			// Client went away mid-stream: cancel everything unfinished.
			// Queued jobs flip to cancelled here; running ones see their
			// context cancelled and the executor records the final state.
			for id := range outstanding {
				s.store.Transition(id, jobs.Pending, jobs.Cancelled, nil)
				if rt := s.rt.get(id); rt != nil {
					rt.cancel()
				}
			}
			s.log.Info("batch client disconnected", "cancelled", len(outstanding), "run_id", runID)
			return
		case line := <-events:
			pending--
			delete(outstanding, line.Job)
			writeLine(line)
		}
	}
}
