package main

// Process-level crash-recovery golden test: build the real propserve
// binary, run it against a journal, SIGKILL it mid-burst, restart it on
// the same journal, and require (a) every accepted job reaches a
// terminal state and (b) every result is byte-identical to an
// uninterrupted reference run once the elapsed_ms timing field is
// stripped.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"prop/internal/jobs"
)

// buildPropserve compiles the binary once per test run.
func buildPropserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "propserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// serveProc is a running propserve child process.
type serveProc struct {
	cmd        *exec.Cmd
	url        string
	logs       *logBuf
	readerDone chan struct{}
}

// wait drains stderr to EOF before reaping the process: calling
// cmd.Wait while the reader goroutine is mid-read would close the pipe
// under it and drop the final log lines ("drained cleanly" among them).
func (p *serveProc) wait() error {
	<-p.readerDone
	return p.cmd.Wait()
}

type logBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuf) add(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.WriteString(line)
	l.b.WriteByte('\n')
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startPropserve launches the binary on a free port and waits for its
// "listening on" banner to learn the address. Stderr keeps draining into
// logs for the life of the process.
func startPropserve(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, logs: &logBuf{}, readerDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(p.readerDone)
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			p.logs.add(line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	select {
	case addr := <-addrCh:
		p.url = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatalf("propserve did not announce a listen address; logs:\n%s", p.logs)
	}
	return p
}

// crashJob is one deterministic job in the golden matrix.
type crashJob struct {
	tenant string
	seed   int
}

var crashMatrix = []crashJob{
	{"acme", 1}, {"globex", 2}, {"acme", 3}, {"globex", 4}, {"acme", 5}, {"globex", 6},
}

// submitCrashJobs posts the golden job matrix and returns the ids in
// submission order.
func submitCrashJobs(t *testing.T, baseURL string, netlist []byte) []string {
	t.Helper()
	ids := make([]string, 0, len(crashMatrix))
	for _, cj := range crashMatrix {
		url := fmt.Sprintf("%s/v1/jobs?algo=prop&runs=12&seed=%d", baseURL, cj.seed)
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(netlist))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", cj.tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("submit status %d: %s", resp.StatusCode, body)
		}
		ids = append(ids, decodeBody[map[string]string](t, resp)["id"])
	}
	return ids
}

// waitProcJobTerminal polls the child server until the job is terminal.
func waitProcJobTerminal(t *testing.T, baseURL, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			v := decodeBody[jobView](t, resp)
			if v.State.Terminal() {
				return v
			}
		} else if resp != nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %s", id, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// canonicalResult strips the nondeterministic elapsed_ms field and
// re-marshals with sorted keys, so byte comparison means "same answer".
func canonicalResult(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad result %s: %v", raw, err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestCrashRecoverySIGKILLGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := buildPropserve(t)
	netlist := netlistJSON(t, 1200, 1350, 4500, 21)

	// Reference: an uninterrupted run of the full matrix, then a clean
	// SIGTERM shutdown (which must log "drained cleanly" and exit 0).
	refDir := filepath.Join(t.TempDir(), "journal")
	ref := startPropserve(t, bin, "-journal", refDir, "-sched-workers", "1")
	refIDs := submitCrashJobs(t, ref.url, netlist)
	want := make(map[string]string, len(refIDs)) // id -> canonical result
	for _, id := range refIDs {
		v := waitProcJobTerminal(t, ref.url, id, 2*time.Minute)
		if v.State != jobs.Done {
			t.Fatalf("reference job %s ended %q (%s)", id, v.State, v.Error)
		}
		want[id] = canonicalResult(t, v.Result)
	}
	if err := ref.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := ref.wait(); err != nil {
		t.Fatalf("reference shutdown: %v; logs:\n%s", err, ref.logs)
	}
	if !strings.Contains(ref.logs.String(), "drained cleanly") {
		t.Fatalf("reference run did not drain cleanly; logs:\n%s", ref.logs)
	}

	// Crash run: same matrix on a single worker, SIGKILL as soon as the
	// first job finishes — later jobs are mid-run or still queued.
	crashDir := filepath.Join(t.TempDir(), "journal")
	victim := startPropserve(t, bin, "-journal", crashDir, "-sched-workers", "1")
	ids := submitCrashJobs(t, victim.url, netlist)
	waitProcJobTerminal(t, victim.url, ids[0], 2*time.Minute)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.wait()

	// Restart on the same journal: every accepted job must reach a
	// terminal Done state with the reference answer.
	revived := startPropserve(t, bin, "-journal", crashDir, "-sched-workers", "1")
	recovered := 0
	for i, id := range ids {
		v := waitProcJobTerminal(t, revived.url, id, 3*time.Minute)
		if v.State != jobs.Done {
			t.Errorf("job %s after crash recovery: state %q (%s)", id, v.State, v.Error)
			continue
		}
		if v.Requeued > 0 {
			recovered++
		}
		got := canonicalResult(t, v.Result)
		if got != want[refIDs[i]] {
			t.Errorf("job %s result diverged after crash recovery:\n got %s\nwant %s",
				id, got, want[refIDs[i]])
		}
	}
	// The kill landed mid-burst, so at least one job must have gone
	// through the requeue path (and the pre-crash job must not have).
	if recovered == 0 {
		t.Error("no job was requeued — the crash landed after the whole burst finished")
	}
	first := waitProcJobTerminal(t, revived.url, ids[0], time.Minute)
	if first.Requeued != 0 {
		t.Errorf("job %s finished before the crash but was requeued %d times", ids[0], first.Requeued)
	}

	// Journal stays replayable: one more restart serves the same states.
	if err := revived.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := revived.wait(); err != nil {
		t.Fatalf("revived shutdown: %v; logs:\n%s", err, revived.logs)
	}
	third := startPropserve(t, bin, "-journal", crashDir, "-sched-workers", "1")
	for i, id := range ids {
		v := waitProcJobTerminal(t, third.url, id, time.Minute)
		if v.State != jobs.Done {
			t.Errorf("job %s on third boot: state %q", id, v.State)
			continue
		}
		if got := canonicalResult(t, v.Result); got != want[refIDs[i]] {
			t.Errorf("job %s result changed on third boot", id)
		}
	}
}

// TestMainHelpExits smoke-tests flag wiring: bad flags exit non-zero.
func TestMainBadFlagExits(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the server binary")
	}
	bin := buildPropserve(t)
	cmd := exec.Command(bin, "-log-level", "nope")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("bad -log-level: err %v, out %s", err, out)
	}
	if !bytes.Contains(out, []byte("log-level")) {
		t.Errorf("error output %q does not mention the flag", out)
	}
}

// TestProcessDrainUnderLoad exercises the signal path while a job is in
// flight: SIGTERM mid-job, the process waits for it and exits 0, and the
// finished result is durable on the next boot.
func TestProcessDrainUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the server binary")
	}
	bin := buildPropserve(t)
	netlist := netlistJSON(t, 1200, 1350, 4500, 21)
	dir := filepath.Join(t.TempDir(), "journal")
	p := startPropserve(t, bin, "-journal", dir, "-sched-workers", "1", "-drain-timeout", "2m")

	url := p.url + "/v1/jobs?algo=prop&runs=12&seed=42"
	resp, err := http.Post(url, "application/json", bytes.NewReader(netlist))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decodeBody[map[string]string](t, resp)["id"]

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.wait(); err != nil {
		t.Fatalf("drain exit: %v; logs:\n%s", err, p.logs)
	}
	if !strings.Contains(p.logs.String(), "drained cleanly") {
		t.Fatalf("missing 'drained cleanly'; logs:\n%s", p.logs)
	}

	p2 := startPropserve(t, bin, "-journal", dir)
	v := waitProcJobTerminal(t, p2.url, id, time.Minute)
	if v.State != jobs.Done || len(v.Result) == 0 {
		t.Fatalf("job after drain+restart = state %q, %d result bytes", v.State, len(v.Result))
	}
}
