package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prop"
)

// testNetlistHGR renders a small deterministic netlist in .hgr form.
func testNetlistHGR(t *testing.T) string {
	t.Helper()
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(2, 30*time.Second).mux())
	t.Cleanup(ts.Close)
	return ts
}

func postHGR(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPartitionEndpointHGR(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=4&seed=1", hgr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.Algorithm != "prop" || pr.K != 2 || pr.Runs != 4 {
		t.Errorf("response meta = %+v", pr)
	}
	if len(pr.Sides) != 120 {
		t.Fatalf("sides len %d, want 120", len(pr.Sides))
	}
	if pr.CutNets <= 0 || pr.CutCost <= 0 {
		t.Errorf("degenerate cut: %+v", pr)
	}

	// The service must agree with the library for the same seed.
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prop.Partition(n, prop.Options{Algorithm: prop.AlgoPROP, Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr.CutCost != want.CutCost || pr.CutNets != want.CutNets {
		t.Errorf("service cut (%g, %d) != library cut (%g, %d)",
			pr.CutCost, pr.CutNets, want.CutCost, want.CutNets)
	}
}

func TestPartitionEndpointJSON(t *testing.T) {
	ts := newTestServer(t)
	n, err := prop.Generate(prop.GenParams{Nodes: 80, Nets: 100, Pins: 330, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/partition?algo=fm&runs=2", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.Algorithm != "fm" || len(pr.Sides) != 80 {
		t.Errorf("response = %+v", pr)
	}
}

func TestPartitionEndpointKWay(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=fm&runs=2&k=4", hgr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.K != 4 || len(pr.Parts) != 120 || len(pr.PartWeights) != 4 {
		t.Errorf("k-way response = %+v", pr)
	}
	if len(pr.Sides) != 0 {
		t.Errorf("k-way response carries 2-way sides")
	}
}

func TestPartitionEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed netlist", "/v1/partition", "not a netlist", http.StatusBadRequest},
		{"bad runs", "/v1/partition?runs=0", hgr, http.StatusBadRequest},
		{"bad runs syntax", "/v1/partition?runs=abc", hgr, http.StatusBadRequest},
		{"bad k", "/v1/partition?k=1", hgr, http.StatusBadRequest},
		{"unknown algo", "/v1/partition?algo=nosuch", hgr, http.StatusUnprocessableEntity},
		{"odd k rejected by engine", "/v1/partition?k=6", hgr, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postHGR(t, ts.URL+c.url, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3", hgr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	sub := decodeBody[map[string]string](t, resp)
	id := sub["id"]
	if id == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(30 * time.Second)
	var final job
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish; last state %q", id, final.State)
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		final = decodeBody[job](t, r)
		if final.State == jobDone || final.State == jobFailed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != jobDone {
		t.Fatalf("job state %q, error %q", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.Sides) != 120 {
		t.Fatalf("job result = %+v", final.Result)
	}
}

func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", r.StatusCode)
	}
}

func TestJobCancel(t *testing.T) {
	ts := newTestServer(t)
	// A large many-run job so cancellation lands while it is running.
	n, err := prop.Generate(prop.GenParams{Nodes: 3000, Nets: 3300, Pins: 11000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=500", sb.String())
	sub := decodeBody[map[string]string](t, resp)
	id := sub["id"]

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not settle after cancel")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[job](t, r)
		if j.State == jobCancelled {
			break
		}
		if j.State == jobDone || j.State == jobFailed {
			// The job may have won the race; that's acceptable only if it
			// truly completed before the cancel arrived.
			t.Logf("job finished before cancel: %q", j.State)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	h := decodeBody[map[string]any](t, r)
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	for i := 0; i < 3; i++ {
		resp := postHGR(t, fmt.Sprintf("%s/v1/partition?algo=fm&runs=2&seed=%d", ts.URL, i), hgr)
		resp.Body.Close()
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[map[string]any](t, r)
	if m["partitions_total"] != float64(3) {
		t.Errorf("partitions_total = %v, want 3", m["partitions_total"])
	}
	if m["runs_completed_total"] != float64(6) {
		t.Errorf("runs_completed_total = %v, want 6", m["runs_completed_total"])
	}
	hist, ok := m["cut_nets"].(map[string]any)
	if !ok || hist["count"] != float64(3) {
		t.Errorf("cut_nets histogram = %v", m["cut_nets"])
	}
	lat, ok := m["partition_latency"].(map[string]any)
	if !ok || lat["count"] != float64(3) {
		t.Errorf("partition_latency = %v", m["partition_latency"])
	}
}

func TestTimeoutReturns504(t *testing.T) {
	ts := newTestServer(t)
	n, err := prop.Generate(prop.GenParams{Nodes: 4000, Nets: 4400, Pins: 15000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=1000&timeout_ms=50", sb.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}
