package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prop"
	"prop/internal/jobs"
)

// testNetlistHGR renders a small deterministic netlist in .hgr form.
func testNetlistHGR(t *testing.T) string {
	t.Helper()
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func newTestServer(t *testing.T) *httptest.Server {
	ts, _ := newTestServerConfig(t, serverConfig{})
	return ts
}

func newTestServerConfig(t *testing.T, cfg serverConfig) (*httptest.Server, *server) {
	t.Helper()
	if cfg.maxPar == 0 {
		cfg.maxPar = 2
	}
	if cfg.defTimeout == 0 {
		cfg.defTimeout = 30 * time.Second
	}
	// The nil logger discards; the handler() wrapper keeps the logging
	// middleware and run-ID propagation on the tested path.
	s, err := newServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	// Close the serving core first: it cancels in-flight jobs, which
	// unblocks any streaming handlers the httptest close waits on.
	t.Cleanup(func() { s.close(); ts.Close() })
	return ts, s
}

// jobResult decodes a finished job's raw result payload (nil when absent).
func jobResult(t *testing.T, j jobView) *partitionResponse {
	t.Helper()
	if len(j.Result) == 0 {
		return nil
	}
	var pr partitionResponse
	if err := json.Unmarshal(j.Result, &pr); err != nil {
		t.Fatal(err)
	}
	return &pr
}

func postHGR(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPartitionEndpointHGR(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=4&seed=1", hgr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.Algorithm != "prop" || pr.K != 2 || pr.Runs != 4 {
		t.Errorf("response meta = %+v", pr)
	}
	if len(pr.Sides) != 120 {
		t.Fatalf("sides len %d, want 120", len(pr.Sides))
	}
	if pr.CutNets <= 0 || pr.CutCost <= 0 {
		t.Errorf("degenerate cut: %+v", pr)
	}

	// The service must agree with the library for the same seed.
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prop.Partition(n, prop.Options{Algorithm: prop.AlgoPROP, Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr.CutCost != want.CutCost || pr.CutNets != want.CutNets {
		t.Errorf("service cut (%g, %d) != library cut (%g, %d)",
			pr.CutCost, pr.CutNets, want.CutCost, want.CutNets)
	}
}

func TestPartitionEndpointJSON(t *testing.T) {
	ts := newTestServer(t)
	n, err := prop.Generate(prop.GenParams{Nodes: 80, Nets: 100, Pins: 330, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/partition?algo=fm&runs=2", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.Algorithm != "fm" || len(pr.Sides) != 80 {
		t.Errorf("response = %+v", pr)
	}
}

func TestPartitionEndpointKWay(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=fm&runs=2&k=4", hgr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.K != 4 || len(pr.Parts) != 120 || len(pr.PartWeights) != 4 {
		t.Errorf("k-way response = %+v", pr)
	}
	if len(pr.Sides) != 0 {
		t.Errorf("k-way response carries 2-way sides")
	}
}

func TestPartitionEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed netlist", "/v1/partition", "not a netlist", http.StatusBadRequest},
		{"bad runs", "/v1/partition?runs=0", hgr, http.StatusBadRequest},
		{"bad runs syntax", "/v1/partition?runs=abc", hgr, http.StatusBadRequest},
		{"bad k", "/v1/partition?k=1", hgr, http.StatusBadRequest},
		{"unknown algo", "/v1/partition?algo=nosuch", hgr, http.StatusBadRequest},
		{"odd k rejected by engine", "/v1/partition?k=6", hgr, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postHGR(t, ts.URL+c.url, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestPartitionEndpointNLevelMode: ?mode= selects the ml-prop hierarchy
// style, agrees with the library, and is validated (unknown mode and mode
// on a non-multilevel algo are both client errors).
func TestPartitionEndpointNLevelMode(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=ml-prop&mode=nlevel&seed=3", hgr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, resp)
	if pr.Algorithm != "ml-prop" || len(pr.Sides) != 120 {
		t.Errorf("response meta = %+v", pr)
	}
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prop.Partition(n, prop.Options{
		Algorithm: prop.AlgoMLPROP, Seed: 3, ML: &prop.MLParams{Mode: "nlevel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.CutCost != want.CutCost || pr.CutNets != want.CutNets {
		t.Errorf("service nlevel cut (%g, %d) != library cut (%g, %d)",
			pr.CutCost, pr.CutNets, want.CutCost, want.CutNets)
	}
	for _, bad := range []string{
		"/v1/partition?algo=ml-prop&mode=zlevel",
		"/v1/partition?algo=prop&mode=nlevel",
	} {
		resp := postHGR(t, ts.URL+bad, hgr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := decodeBody[map[string][]map[string]any](t, resp)
	algos := body["algorithms"]
	if len(algos) != len(prop.Algorithms()) {
		t.Fatalf("%d algorithms listed, want %d", len(algos), len(prop.Algorithms()))
	}
	moveEngines := 0
	seenFlow := false
	for _, a := range algos {
		if a["name"] == "" || a["description"] == "" {
			t.Errorf("incomplete entry %v", a)
		}
		if me, _ := a["move_engine"].(bool); me {
			moveEngines++
		}
		if a["name"] == "flow" {
			seenFlow = true
			if me, _ := a["move_engine"].(bool); me {
				t.Error("flow advertised as a move engine")
			}
			if ms, _ := a["multi_start"].(bool); !ms {
				t.Error("flow not advertised as multi-start")
			}
		}
	}
	if moveEngines != 6 {
		t.Errorf("%d move-engine algorithms, want 6 (prop, fm, fm-tree, la, kl, sk)", moveEngines)
	}
	if !seenFlow {
		t.Error("flow missing from the advertised feature matrix")
	}
}

// TestPartitionEndpointFlow serves ?algo=flow and checks the polish
// contract over the wire: for identical runs/seed, flow's cut is never
// worse than PROP's.
func TestPartitionEndpointFlow(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	flowResp := postHGR(t, ts.URL+"/v1/partition?algo=flow&runs=2&seed=3", hgr)
	if flowResp.StatusCode != http.StatusOK {
		t.Fatalf("flow status %d", flowResp.StatusCode)
	}
	fr := decodeBody[partitionResponse](t, flowResp)
	if fr.Algorithm != "flow" || fr.K != 2 || len(fr.Sides) != 120 {
		t.Errorf("flow response meta = %+v", fr)
	}
	propResp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=2&seed=3", hgr)
	if propResp.StatusCode != http.StatusOK {
		t.Fatalf("prop status %d", propResp.StatusCode)
	}
	pr := decodeBody[partitionResponse](t, propResp)
	if fr.CutCost > pr.CutCost {
		t.Errorf("flow cut %g worse than PROP cut %g on the same portfolio", fr.CutCost, pr.CutCost)
	}
}

// TestPartitionEndpointFlowKWayRejected pins the early 400 for ?algo=flow
// with k > 2: the query check must fire before the netlist body is even
// parsed, so an unreadable body still yields the flow-specific error.
func TestPartitionEndpointFlowKWayRejected(t *testing.T) {
	ts := newTestServer(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=flow&k=4", "not a netlist")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "flow") || !strings.Contains(string(body), "k=2") {
		t.Errorf("error body %q does not name the flow k=2 restriction", body)
	}
}

func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3", hgr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	sub := decodeBody[map[string]string](t, resp)
	id := sub["id"]
	if id == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(30 * time.Second)
	var final jobView
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish; last state %q", id, final.State)
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		final = decodeBody[jobView](t, r)
		if final.State == jobs.Done || final.State == jobs.Failed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != jobs.Done {
		t.Fatalf("job state %q, error %q", final.State, final.Error)
	}
	if res := jobResult(t, final); res == nil || len(res.Sides) != 120 {
		t.Fatalf("job result = %+v", res)
	}
}

func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", r.StatusCode)
	}
}

func TestJobCancel(t *testing.T) {
	ts := newTestServer(t)
	// A large many-run job so cancellation lands while it is running.
	n, err := prop.Generate(prop.GenParams{Nodes: 3000, Nets: 3300, Pins: 11000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=500", sb.String())
	sub := decodeBody[map[string]string](t, resp)
	id := sub["id"]

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not settle after cancel")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State == jobs.Cancelled {
			break
		}
		if j.State == jobs.Done || j.State == jobs.Failed {
			// The job may have won the race; that's acceptable only if it
			// truly completed before the cancel arrived.
			t.Logf("job finished before cancel: %q", j.State)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	h := decodeBody[map[string]any](t, r)
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	for i := 0; i < 3; i++ {
		resp := postHGR(t, fmt.Sprintf("%s/v1/partition?algo=fm&runs=2&seed=%d", ts.URL, i), hgr)
		resp.Body.Close()
	}
	r, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[map[string]any](t, r)
	if m["partitions_total"] != float64(3) {
		t.Errorf("partitions_total = %v, want 3", m["partitions_total"])
	}
	if m["runs_completed_total"] != float64(6) {
		t.Errorf("runs_completed_total = %v, want 6", m["runs_completed_total"])
	}
	hist, ok := m["cut_nets"].(map[string]any)
	if !ok || hist["count"] != float64(3) {
		t.Errorf("cut_nets histogram = %v", m["cut_nets"])
	}
	passes, ok := m["passes_per_run"].(map[string]any)
	if !ok || passes["count"] != float64(6) {
		t.Errorf("passes_per_run histogram = %v", m["passes_per_run"])
	}
	lat, ok := m["partition_latency"].(map[string]any)
	if !ok || lat["count"] != float64(3) {
		t.Errorf("partition_latency = %v", m["partition_latency"])
	}
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=2&seed=1", hgr)
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, r.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE partitions_total counter\npartitions_total 1\n",
		"# TYPE runs_completed_total counter\nruns_completed_total 2\n",
		"# TYPE passes_per_run histogram\n",
		`passes_per_run_bucket{le="+Inf"} 2`,
		"# TYPE cut_improvement_pct gauge\n",
		"# TYPE partition_latency summary\n",
		`partition_latency{quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output:\n%s", want, body)
		}
	}
}

func TestPprofEndpoint(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", r.StatusCode)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, r.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "goroutine") {
		t.Errorf("pprof index does not list profiles")
	}
}

func TestJobTrace(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3&trace=pass", hgr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	sub := decodeBody[map[string]string](t, resp)
	id := sub["id"]

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("traced job did not finish")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State == jobs.Done {
			break
		}
		if j.State == jobs.Failed || j.State == jobs.Cancelled {
			t.Fatalf("job state %q, error %q", j.State, j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content-type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		kind, _ := ev["ev"].(string)
		kinds[kind]++
		if id2, ok := ev["id"].(string); ok && id2 != id {
			t.Errorf("trace event labeled %q, want job id %q", id2, id)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds["run_start"] != 2 || kinds["run_end"] != 2 {
		t.Errorf("run span counts = %v, want 2 run_start + 2 run_end", kinds)
	}
	if kinds["pass"] == 0 {
		t.Errorf("no pass events in trace: %v", kinds)
	}

	// An untraced job must 404 on the trace endpoint.
	resp = postHGR(t, ts.URL+"/v1/jobs?algo=fm&runs=1", hgr)
	sub = decodeBody[map[string]string](t, resp)
	r2, err := http.Get(ts.URL + "/debug/trace/" + sub["id"])
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace status %d, want 404", r2.StatusCode)
	}
}

func TestPartitionCacheHitIsByteIdentical(t *testing.T) {
	ts, s := newTestServerConfig(t, serverConfig{})
	hgr := testNetlistHGR(t)
	url := ts.URL + "/v1/partition?algo=prop&runs=3&seed=5"

	read := func(resp *http.Response) (string, string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String(), resp.Header.Get("X-Cache")
	}

	body1, xc1 := read(postHGR(t, url, hgr))
	if xc1 != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", xc1)
	}
	body2, xc2 := read(postHGR(t, url, hgr))
	if xc2 != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", xc2)
	}
	if body1 != body2 {
		t.Errorf("cache hit payload differs from populating miss:\n%s\nvs\n%s", body1, body2)
	}
	if h, m := s.results.Stats(); h != 1 || m != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", h, m)
	}

	// A different seed is a different fingerprint — and a different par
	// (excluded from the fingerprint by design) is not.
	_, xc3 := read(postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=3&seed=6", hgr))
	if xc3 != "miss" {
		t.Errorf("different seed X-Cache = %q, want miss", xc3)
	}
	body4, xc4 := read(postHGR(t, url+"&par=1", hgr))
	if xc4 != "hit" || body4 != body1 {
		t.Errorf("par-only change X-Cache = %q (want hit), payload identical = %t", xc4, body4 == body1)
	}
}

func TestJobQueueFullReturns429(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{maxJobs: 1})
	n, err := prop.Generate(prop.GenParams{Nodes: 3000, Nets: 3300, Pins: 11000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	// Fill the single slot with a long-running job.
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=500", sb.String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	sub := decodeBody[map[string]string](t, resp)

	resp2 := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2", sb.String())
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}

	// Cancelling the in-flight job frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub["id"], nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after cancel")
		}
		r3 := postHGR(t, ts.URL+"/v1/jobs?algo=fm&runs=1", testNetlistHGR(t))
		r3.Body.Close()
		if r3.StatusCode == http.StatusAccepted {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitJobDone polls until the job reaches a terminal state.
func waitJobDone(t *testing.T, baseURL, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		r, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State.Terminal() {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitJob(t *testing.T, url, body string) string {
	t.Helper()
	resp := postHGR(t, url, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	return decodeBody[map[string]string](t, resp)["id"]
}

func TestJobHistoryEviction(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{jobHistory: 1})
	hgr := testNetlistHGR(t)
	id1 := submitJob(t, ts.URL+"/v1/jobs?algo=fm&runs=1", hgr)
	waitJobDone(t, ts.URL, id1)
	id2 := submitJob(t, ts.URL+"/v1/jobs?algo=fm&runs=1", hgr)
	waitJobDone(t, ts.URL, id2)

	// Two terminal jobs against a history of one: the older is evicted.
	r, err := http.Get(ts.URL + "/v1/jobs/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job status %d, want 404", r.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/v1/jobs/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("retained job status %d, want 200", r2.StatusCode)
	}
}

func TestJobTTLEviction(t *testing.T) {
	// A switchable clock: real time while the job runs, then jumped past
	// the TTL to trigger eviction without sleeping.
	var clockMu sync.Mutex
	offset := time.Duration(0)
	cfg := serverConfig{jobTTL: time.Minute, now: func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return time.Now().Add(offset)
	}}
	ts, _ := newTestServerConfig(t, cfg)
	hgr := testNetlistHGR(t)
	id := submitJob(t, ts.URL+"/v1/jobs?algo=fm&runs=1", hgr)
	waitJobDone(t, ts.URL, id)

	// Advance the store's clock past the TTL instead of sleeping.
	clockMu.Lock()
	offset = 2 * time.Minute
	clockMu.Unlock()
	r, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("expired job status %d, want 404", r.StatusCode)
	}
}

// repartitionBody builds the inline /v1/repartition request body.
func repartitionBody(t *testing.T, n *prop.Netlist, sides []uint8, d *prop.Delta) []byte {
	t.Helper()
	var nl bytes.Buffer
	if err := n.WriteJSON(&nl); err != nil {
		t.Fatal(err)
	}
	intSides := make([]int, len(sides))
	for u, s := range sides {
		intSides[u] = int(s)
	}
	body, err := json.Marshal(map[string]any{
		"netlist": json.RawMessage(nl.Bytes()),
		"sides":   intSides,
		"delta":   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestRepartitionEndpoint(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{})
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := prop.Partition(n, prop.Options{Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := &prop.Delta{
		AddNodes: []prop.DeltaNodeAdd{{Name: "eco0", Weight: 1}},
		AddNets:  []prop.DeltaNetAdd{{Name: "econet0", Cost: 1, Pins: []int{0, 1, n.NumNodes()}}},
	}
	body := repartitionBody(t, n, prev.Sides, d)
	resp, err := http.Post(ts.URL+"/v1/repartition?runs=1&seed=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	rr := decodeBody[repartitionResponse](t, resp)
	if len(rr.Sides) != n.NumNodes()+1 {
		t.Fatalf("sides len %d, want %d", len(rr.Sides), n.NumNodes()+1)
	}
	if !rr.DeltaStructural || rr.DeltaNewNodes != n.NumNodes()+1 {
		t.Errorf("delta info = structural %t, nodes %d", rr.DeltaStructural, rr.DeltaNewNodes)
	}
	if rr.CutCost <= 0 || rr.CutNets <= 0 {
		t.Errorf("degenerate warm cut: %+v", rr.partitionResponse)
	}
}

func TestRepartitionFromBaseJob(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{})
	hgr := testNetlistHGR(t)
	id := submitJob(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3", hgr)
	if j := waitJobDone(t, ts.URL, id); j.State != jobs.Done {
		t.Fatalf("base job state %q", j.State)
	}
	d := &prop.Delta{Recost: []prop.DeltaNetCost{{Net: 0, Cost: 3}}}
	body, err := json.Marshal(map[string]any{"base_job": id, "delta": d})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/repartition?runs=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	rr := decodeBody[repartitionResponse](t, resp)
	if len(rr.Sides) != 120 || rr.DeltaStructural {
		t.Errorf("base-job repartition = %d sides, structural %t", len(rr.Sides), rr.DeltaStructural)
	}
}

func TestRepartitionErrors(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/repartition", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"base_job": "j9", "delta": {}}`); got != http.StatusNotFound {
		t.Errorf("unknown base job status %d, want 404", got)
	}
	if got := post(`{"base_job": "j9"}`); got != http.StatusBadRequest {
		t.Errorf("missing delta status %d, want 400", got)
	}
	if got := post(`not json`); got != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", got)
	}
	if got := post(`{"delta": {}}`); got != http.StatusBadRequest {
		t.Errorf("missing base status %d, want 400", got)
	}
}

func TestTimeoutReturns504(t *testing.T) {
	ts := newTestServer(t)
	n, err := prop.Generate(prop.GenParams{Nodes: 4000, Nets: 4400, Pins: 15000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=1000&timeout_ms=50", sb.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}

// TestPartitionMoveWorkers covers the ?move_workers= plumbing: the sync
// endpoint must reproduce the library result bit-identically at any worker
// count (the parallel loop's invariance contract), non-positive or
// malformed values are 400s, and an async job reports its effective value.
func TestPartitionMoveWorkers(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)

	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prop.Partition(n, prop.Options{Algorithm: prop.AlgoPROP, Runs: 2, Seed: 3, MoveWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		resp := postHGR(t, fmt.Sprintf("%s/v1/partition?algo=prop&runs=2&seed=3&move_workers=%d", ts.URL, w), hgr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("move_workers=%d: status %d", w, resp.StatusCode)
		}
		pr := decodeBody[partitionResponse](t, resp)
		if pr.CutCost != want.CutCost {
			t.Errorf("move_workers=%d: cut %g, want %g", w, pr.CutCost, want.CutCost)
		}
		for i, s := range want.Sides {
			if pr.Sides[i] != int(s) {
				t.Fatalf("move_workers=%d: side[%d] = %d, want %d", w, i, pr.Sides[i], s)
			}
		}
	}

	for _, bad := range []string{"0", "-2", "abc"} {
		resp := postHGR(t, ts.URL+"/v1/partition?move_workers="+bad, hgr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("move_workers=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3&move_workers=4", hgr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decodeBody[map[string]string](t, resp)["id"]
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.MoveWorkers != 4 {
			t.Fatalf("job move_workers = %d, want 4", j.MoveWorkers)
		}
		if j.State == jobs.Done || j.State == jobs.Failed {
			if j.State != jobs.Done {
				t.Fatalf("job state %q, error %q", j.State, j.Error)
			}
			if res := jobResult(t, j); res == nil || res.CutCost != want.CutCost {
				t.Fatalf("job result = %+v, want cut %g", res, want.CutCost)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobProgressAdvances polls a long-running job and requires the live
// progress snapshot in GET /v1/jobs/{id} to move (phase, run, pass, or
// best cut) before the job completes, and /debug/runs to list the job
// while it is in flight.
func TestJobProgressAdvances(t *testing.T) {
	ts := newTestServer(t)
	// A large many-run job so several polls land while it is running.
	n, err := prop.Generate(prop.GenParams{Nodes: 3000, Nets: 3300, Pins: 11000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteHGR(&sb); err != nil {
		t.Fatal(err)
	}
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=500", sb.String())
	id := decodeBody[map[string]string](t, resp)["id"]

	type view struct {
		phase     string
		run, pass int
		cut       float64
	}
	seen := map[view]bool{}
	sawDebugRuns := false
	deadline := time.Now().Add(30 * time.Second)
	for len(seen) < 2 || !sawDebugRuns {
		if time.Now().After(deadline) {
			t.Fatalf("progress did not advance: %d distinct snapshots, /debug/runs listed=%v",
				len(seen), sawDebugRuns)
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State.Terminal() {
			t.Fatalf("job reached %q with only %d distinct progress snapshots", j.State, len(seen))
		}
		if j.State == jobs.Running {
			if j.Progress == nil {
				t.Fatal("running job has no progress snapshot")
			}
			v := view{phase: j.Progress.Phase, run: j.Progress.Run, pass: j.Progress.Pass}
			if j.Progress.BestCut != nil {
				v.cut = *j.Progress.BestCut
			}
			seen[v] = true

			dr, err := http.Get(ts.URL + "/debug/runs")
			if err != nil {
				t.Fatal(err)
			}
			runs := decodeBody[map[string][]jobView](t, dr)["runs"]
			for _, rj := range runs {
				if rj.ID == id && rj.Progress != nil {
					sawDebugRuns = true
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The engine reported at least one named phase along the way.
	named := false
	for v := range seen {
		if v.phase != "" {
			named = true
		}
	}
	if !named {
		t.Errorf("no progress snapshot named a phase: %v", seen)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()

	// Once terminal, the snapshot drops progress (the result supersedes it).
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not settle after cancel")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State.Terminal() {
			if j.Progress != nil {
				t.Errorf("terminal job still carries progress: %+v", j.Progress)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDebugRunsEmpty(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/debug/runs")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	runs := decodeBody[map[string][]jobView](t, r)["runs"]
	if len(runs) != 0 {
		t.Errorf("idle /debug/runs = %+v", runs)
	}
}

// TestPhaseDurationMetrics checks that engine phase spans land in the
// phase_duration_ms histogram family — for a plain sync request (discard
// tracer) and in both export formats.
func TestPhaseDurationMetrics(t *testing.T) {
	ts := newTestServer(t)
	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/partition?algo=prop&runs=2&seed=1", hgr)
	resp.Body.Close()

	r, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[map[string]any](t, r)
	fam, ok := m["phase_duration_ms"].(map[string]any)
	if !ok {
		t.Fatalf("phase_duration_ms = %v", m["phase_duration_ms"])
	}
	// Every portfolio run dispatches through the "prop" refine phase.
	child, ok := fam["prop"].(map[string]any)
	if !ok || child["count"] != float64(2) {
		t.Errorf("phase_duration_ms[prop] = %v", fam["prop"])
	}

	pr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, pr.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE phase_duration_ms histogram\n",
		`phase_duration_ms_bucket{phase="prop",le="+Inf"} 2`,
		`phase_duration_ms_count{phase="prop"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output:\n%s", want, body)
		}
	}
}

// syncWriter serializes writes from the server's logging goroutines.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// TestJobCompletionLogAndSlowRun pins the enriched completion log line
// (algo, move_workers, passes) and the -slow-run warning.
func TestJobCompletionLogAndSlowRun(t *testing.T) {
	var lw syncWriter
	logger := slog.New(slog.NewTextHandler(&lw, nil))
	s, err := newServer(serverConfig{maxPar: 2, defTimeout: 30 * time.Second, slowRun: time.Nanosecond}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() { s.close(); ts.Close() })

	hgr := testNetlistHGR(t)
	resp := postHGR(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=3&move_workers=2", hgr)
	id := decodeBody[map[string]string](t, resp)["id"]
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeBody[jobView](t, r)
		if j.State == jobs.Done {
			if res := jobResult(t, j); res == nil || res.Passes <= 0 {
				t.Errorf("done job result = %+v, want passes > 0", res)
			}
			break
		}
		if j.State.Terminal() {
			t.Fatalf("job state %q, error %q", j.State, j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	logs := lw.String()
	for _, want := range []string{
		"algo=prop", "move_workers=2", "passes=",
		"msg=\"slow run\"", "threshold_ms=",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("completion log missing %q in:\n%s", want, logs)
		}
	}
}
