package main

// Tests for the scale-out serving layer: streaming /v1/batch, tenant
// quotas and listings, request body limits, graceful drain, and journal
// persistence across an in-process restart. The process-level SIGKILL
// crash-recovery test lives in crash_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prop"
	"prop/internal/jobs"
)

// netlistJSON renders a deterministic netlist in the JSON netlist format.
func netlistJSON(t *testing.T, nodes, nets, pins int, seed int64) []byte {
	t.Helper()
	n, err := prop.Generate(prop.GenParams{Nodes: nodes, Nets: nets, Pins: pins, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postTenant posts a body with an X-Tenant header.
func postTenant(t *testing.T, url, tenant, contentType string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchStreamingFlushAndMixedLines drives /v1/batch with one invalid
// item, one quick item, and one long item on a single scheduler worker.
// The invalid item's error line and the quick item's success line must
// arrive while the long item is still in flight — proof of per-line
// flushing — and cancelling the long job mid-stream yields its error
// line and a clean end of stream.
func TestBatchStreamingFlushAndMixedLines(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{schedWorkers: 1})
	small := netlistJSON(t, 120, 140, 480, 7)
	big := netlistJSON(t, 3000, 3300, 11000, 11)

	body, err := json.Marshal(map[string]any{"items": []map[string]any{
		{}, // neither netlist nor delta: immediate error line
		{"netlist": json.RawMessage(small)},
		{"netlist": json.RawMessage(big)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch?algo=prop&runs=300&seed=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type %q", ct)
	}
	rd := bufio.NewReader(resp.Body)
	readLine := func() batchLine {
		t.Helper()
		raw, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatalf("stream read: %v (got %q)", err, raw)
		}
		var line batchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad line %q: %v", raw, err)
		}
		return line
	}

	// Line 1: the malformed item, refused before becoming a job.
	l1 := readLine()
	if l1.Index != 0 || l1.OK || l1.Error == "" || l1.Job != "" {
		t.Fatalf("line 1 = %+v, want index 0 rejection", l1)
	}
	// Line 2: the quick item — its arrival proves the server flushed
	// while the big item was still queued or running behind it.
	l2 := readLine()
	if l2.Index != 1 || !l2.OK || l2.Job == "" {
		t.Fatalf("line 2 = %+v, want index 1 success", l2)
	}
	var pr partitionResponse
	if err := json.Unmarshal(l2.Result, &pr); err != nil || len(pr.Sides) != 120 {
		t.Fatalf("line 2 result = %s (err %v)", l2.Result, err)
	}

	// The long item is not done yet (single worker, 300 runs on 3000
	// nodes): find it and cancel it mid-stream.
	lr, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var inflight string
	for _, v := range decodeBody[map[string][]jobView](t, lr)["jobs"] {
		if !v.State.Terminal() {
			inflight = v.ID
		}
	}
	if inflight == "" {
		t.Fatal("long batch item already terminal; cannot exercise mid-stream cancel")
	}
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+inflight, nil)
	dr, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()

	l3 := readLine()
	if l3.Index != 2 || l3.OK || l3.Job != inflight {
		t.Fatalf("line 3 = %+v, want cancelled index 2 job %s", l3, inflight)
	}
	if _, err := rd.ReadBytes('\n'); err != io.EOF {
		t.Fatalf("stream did not end after final line: %v", err)
	}
}

// TestBatchDisconnectCancelsJobs aborts the batch request mid-stream and
// requires every accepted item to reach the cancelled state.
func TestBatchDisconnectCancelsJobs(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{schedWorkers: 1})
	big := netlistJSON(t, 3000, 3300, 11000, 11)
	body, err := json.Marshal(map[string]any{"items": []map[string]any{
		{"netlist": json.RawMessage(big)},
		{"netlist": json.RawMessage(big)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/batch?algo=prop&runs=1000&seed=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Both items are accepted (the handler submits before writing the
	// headers we already received); drop the connection.
	cancelReq()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("batch jobs did not settle after client disconnect")
		}
		lr, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		views := decodeBody[map[string][]jobView](t, lr)["jobs"]
		terminal := 0
		for _, v := range views {
			if v.State == jobs.Done {
				t.Fatalf("job %s completed despite disconnect cancel", v.ID)
			}
			if v.State.Terminal() {
				terminal++
			}
		}
		if len(views) == 2 && terminal == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOversizedBodyReturns413 pins the -max-body limit on every POST
// surface: oversized netlists and batch payloads answer 413 with a JSON
// error, not a hung parse or a 400.
func TestOversizedBodyReturns413(t *testing.T) {
	small := netlistJSON(t, 30, 30, 90, 3)
	limit := int64(len(small) + 256)
	ts, _ := newTestServerConfig(t, serverConfig{maxBody: limit})
	oversized := netlistJSON(t, 1500, 1600, 5000, 3) // far past the limit
	for _, path := range []string{"/v1/partition", "/v1/jobs", "/v1/batch", "/v1/repartition"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(oversized))
		if err != nil {
			t.Fatal(err)
		}
		got := decodeBody[map[string]string](t, resp)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413 (%v)", path, resp.StatusCode, got)
			continue
		}
		if !strings.Contains(got["error"], fmt.Sprint(limit)) {
			t.Errorf("%s: error %q does not name the limit %d", path, got["error"], limit)
		}
	}
	// Within the limit still works.
	resp, err := http.Post(ts.URL+"/v1/partition?runs=1", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body status %d, want 200", resp.StatusCode)
	}
}

// TestTenantQuota429 configures a one-token bucket and checks the quota
// is enforced per tenant: the second submission of one tenant is refused
// while another tenant's first sails through.
func TestTenantQuota429(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{tenantRate: 0.0001, tenantBurst: 1})
	small := netlistJSON(t, 30, 30, 90, 3)

	r1 := postTenant(t, ts.URL+"/v1/jobs?runs=1", "", "application/json", small)
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", r1.StatusCode)
	}
	r2 := postTenant(t, ts.URL+"/v1/jobs?runs=1", "", "application/json", small)
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	r3 := postTenant(t, ts.URL+"/v1/jobs?runs=1", "other", "application/json", small)
	r3.Body.Close()
	if r3.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant's first submit status %d, want 202", r3.StatusCode)
	}
	// Malformed tenant names are rejected outright.
	r4 := postTenant(t, ts.URL+"/v1/jobs?runs=1", "bad tenant!", "application/json", small)
	r4.Body.Close()
	if r4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad tenant status %d, want 400", r4.StatusCode)
	}
}

// TestJobListByTenant submits jobs under several tenants and checks the
// ?tenant= filter, the tenant echo in views, and the per-tenant metric
// families.
func TestJobListByTenant(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{})
	small := netlistJSON(t, 30, 30, 90, 3)
	ids := map[string]string{}
	for _, tenant := range []string{"alpha", "beta", ""} {
		r := postTenant(t, ts.URL+"/v1/jobs?runs=1", tenant, "application/json", small)
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("submit for %q: status %d", tenant, r.StatusCode)
		}
		sub := decodeBody[map[string]string](t, r)
		ids[tenant] = sub["id"]
		waitJobDone(t, ts.URL, sub["id"])
	}

	lr, err := http.Get(ts.URL + "/v1/jobs?tenant=alpha")
	if err != nil {
		t.Fatal(err)
	}
	alpha := decodeBody[map[string][]jobView](t, lr)["jobs"]
	if len(alpha) != 1 || alpha[0].ID != ids["alpha"] || alpha[0].Tenant != "alpha" {
		t.Errorf("tenant=alpha listing = %+v", alpha)
	}
	lr2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	all := decodeBody[map[string][]jobView](t, lr2)["jobs"]
	if len(all) != 3 {
		t.Errorf("full listing has %d jobs, want 3", len(all))
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mr.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`tenant_admitted_total{tenant="alpha"} 1`,
		`tenant_admitted_total{tenant="beta"} 1`,
		fmt.Sprintf(`tenant_admitted_total{tenant=%q} 1`, defaultTenant),
		`tenant_jobs_completed_total{tenant="alpha"} 1`,
		`tenant_queue_depth{tenant="alpha"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
}

// TestDrainRefusesNewWorkAndFinishesInFlight starts a long job, begins a
// drain while it runs, and requires: 503 on new compute POSTs, 503 on
// healthz, the in-flight job carried to completion, and a cleanly closed
// journal.
func TestDrainRefusesNewWorkAndFinishesInFlight(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	ts, s := newTestServerConfig(t, serverConfig{journalDir: dir, schedWorkers: 1})
	big := netlistJSON(t, 3000, 3300, 11000, 11)
	r := postTenant(t, ts.URL+"/v1/jobs?algo=prop&runs=12&seed=1", "", "application/json", big)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", r.StatusCode)
	}
	id := decodeBody[map[string]string](t, r)["id"]

	s.beginDrain()
	small := netlistJSON(t, 30, 30, 90, 3)
	for _, path := range []string{"/v1/partition", "/v1/jobs", "/v1/batch", "/v1/repartition"} {
		dr, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(small))
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: status %d, want 503", path, dr.StatusCode)
		}
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[map[string]any](t, hr)
	if hr.StatusCode != http.StatusServiceUnavailable || h["status"] != "draining" {
		t.Errorf("healthz during drain = %d %v", hr.StatusCode, h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job finished — not cancelled — before the drain
	// returned, and its result is durable.
	j, ok := s.store.Get(id)
	if !ok || j.State != jobs.Done || len(j.Result) == 0 {
		t.Fatalf("drained job = %+v (found %t)", j, ok)
	}
}

// TestJournalPersistsAcrossRestart finishes a job on one server, closes
// it, and reopens the same journal under a fresh server: the job's result
// must be served byte-identically, and the restarted record must still
// work as a repartition base (netlist and sides reconstructed from the
// journal, not from process memory).
func TestJournalPersistsAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	ts1, s1 := newTestServerConfig(t, serverConfig{journalDir: dir})
	small := netlistJSON(t, 120, 140, 480, 7)
	r := postTenant(t, ts1.URL+"/v1/jobs?algo=prop&runs=2&seed=3", "acme", "application/json", small)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", r.StatusCode)
	}
	id := decodeBody[map[string]string](t, r)["id"]
	before := waitJobDone(t, ts1.URL, id)
	if before.State != jobs.Done {
		t.Fatalf("job state %q", before.State)
	}
	s1.close()

	ts2, _ := newTestServerConfig(t, serverConfig{journalDir: dir})
	jr, err := http.Get(ts2.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	after := decodeBody[jobView](t, jr)
	if after.State != jobs.Done || after.Tenant != "acme" {
		t.Fatalf("restarted job = %+v", after)
	}
	if !bytes.Equal(before.Result, after.Result) {
		t.Errorf("result changed across restart:\n%s\nvs\n%s", before.Result, after.Result)
	}

	// The restarted record still resolves as a repartition base.
	d := &prop.Delta{Recost: []prop.DeltaNetCost{{Net: 0, Cost: 3}}}
	body, err := json.Marshal(map[string]any{"base_job": id, "delta": d})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := http.Post(ts2.URL+"/v1/repartition?runs=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(rr.Body)
		t.Fatalf("repartition from restarted base: status %d: %s", rr.StatusCode, msg)
	}
}

// TestBatchRepartitionItems runs a mixed batch: a partition item and a
// delta item against an inline base, sharing the query knobs.
func TestBatchRepartitionItems(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{})
	n, err := prop.Generate(prop.GenParams{Nodes: 120, Nets: 140, Pins: 480, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := prop.Partition(n, prop.Options{Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var nl bytes.Buffer
	if err := n.WriteJSON(&nl); err != nil {
		t.Fatal(err)
	}
	intSides := make([]int, len(prev.Sides))
	for u, sd := range prev.Sides {
		intSides[u] = int(sd)
	}
	body, err := json.Marshal(map[string]any{"items": []map[string]any{
		{"netlist": json.RawMessage(nl.Bytes())},
		{
			"netlist": json.RawMessage(nl.Bytes()),
			"sides":   intSides,
			"delta":   &prop.Delta{Recost: []prop.DeltaNetCost{{Net: 0, Cost: 3}}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch?runs=2&seed=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %+v", len(lines), lines)
	}
	byIndex := map[int]batchLine{}
	for _, l := range lines {
		if !l.OK {
			t.Errorf("line %+v not ok", l)
		}
		byIndex[l.Index] = l
	}
	var part partitionResponse
	if err := json.Unmarshal(byIndex[0].Result, &part); err != nil || len(part.Sides) != 120 {
		t.Errorf("partition item result = %s (err %v)", byIndex[0].Result, err)
	}
	var rep repartitionResponse
	if err := json.Unmarshal(byIndex[1].Result, &rep); err != nil || len(rep.Sides) != 120 {
		t.Errorf("repartition item result = %s (err %v)", byIndex[1].Result, err)
	}
}

// TestBatchValidation pins the request-level failure modes: empty items,
// too many items, malformed JSON.
func TestBatchValidation(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{batchMax: 2})
	small := netlistJSON(t, 30, 30, 90, 3)
	item := fmt.Sprintf(`{"netlist": %s}`, small)
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty items", `{"items": []}`, http.StatusBadRequest},
		{"not json", `nope`, http.StatusBadRequest},
		{"over batch-max", fmt.Sprintf(`{"items": [%s, %s, %s]}`, item, item, item), http.StatusBadRequest},
		{"bad query is checked first", `{"items": []}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestSchedulerFairnessAcrossTenants floods one tenant and then submits a
// second tenant's job on a single worker: round-robin dispatch must run
// the second tenant's job before the flood finishes.
func TestSchedulerFairnessAcrossTenants(t *testing.T) {
	ts, _ := newTestServerConfig(t, serverConfig{schedWorkers: 1})
	med := netlistJSON(t, 600, 700, 2300, 5)
	small := netlistJSON(t, 60, 70, 220, 5)

	// Hold the single worker with a long job, then queue the flood and
	// the latecomer behind it so dispatch order is decided by DRR alone.
	var floodIDs []string
	r0 := postTenant(t, ts.URL+"/v1/jobs?algo=prop&runs=40&seed=1", "flood", "application/json", med)
	if r0.StatusCode != http.StatusAccepted {
		t.Fatalf("gate submit status %d", r0.StatusCode)
	}
	floodIDs = append(floodIDs, decodeBody[map[string]string](t, r0)["id"])
	for i := 0; i < 4; i++ {
		r := postTenant(t, fmt.Sprintf("%s/v1/jobs?algo=prop&runs=40&seed=%d", ts.URL, i+2), "flood", "application/json", med)
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("flood submit %d status %d", i, r.StatusCode)
		}
		floodIDs = append(floodIDs, decodeBody[map[string]string](t, r)["id"])
	}
	rl := postTenant(t, ts.URL+"/v1/jobs?algo=prop&runs=2&seed=9", "late", "application/json", small)
	if rl.StatusCode != http.StatusAccepted {
		t.Fatalf("late submit status %d", rl.StatusCode)
	}
	lateID := decodeBody[map[string]string](t, rl)["id"]

	late := waitJobDone(t, ts.URL, lateID)
	if late.State != jobs.Done {
		t.Fatalf("late job state %q, error %q", late.State, late.Error)
	}
	// When the late job finished, the flood must not all be done — DRR let
	// the late tenant cut ahead of the flood's backlog.
	lr, err := http.Get(ts.URL + "/v1/jobs?tenant=flood")
	if err != nil {
		t.Fatal(err)
	}
	pendingFlood := 0
	for _, v := range decodeBody[map[string][]jobView](t, lr)["jobs"] {
		if !v.State.Terminal() {
			pendingFlood++
		}
	}
	if pendingFlood == 0 {
		t.Error("flood tenant fully drained before the late tenant's job — no fair-share evidence")
	}
	for _, id := range floodIDs {
		waitJobDone(t, ts.URL, id)
	}
}
