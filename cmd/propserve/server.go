package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"prop"
	"prop/internal/metrics"
)

// server carries the HTTP handlers, the async job store, and the metric
// instruments. One server fronts one shared concurrent engine
// configuration (maxPar worker goroutines per request portfolio).
type server struct {
	maxPar     int           // cap on per-request Parallel
	maxBody    int64         // request body limit, bytes
	defTimeout time.Duration // per-request compute budget
	jobs       *jobStore
	start      time.Time

	reg      *metrics.Registry
	mJobsUp  *metrics.Gauge   // async jobs currently queued or running
	mReqUp   *metrics.Gauge   // synchronous partitions in flight
	mJobs    *metrics.Counter // async jobs accepted
	mParts   *metrics.Counter // partitions completed (sync + async)
	mRuns    *metrics.Counter // multi-start runs completed
	mErrors  *metrics.Counter // requests rejected or failed
	mCutHist *metrics.Histogram
	mLatency *metrics.Latency
}

func newServer(maxPar int, defTimeout time.Duration) *server {
	reg := metrics.NewRegistry()
	s := &server{
		maxPar:     maxPar,
		maxBody:    64 << 20,
		defTimeout: defTimeout,
		jobs:       newJobStore(),
		start:      time.Now(),
		reg:        reg,
		mJobsUp:    reg.Gauge("jobs_in_flight"),
		mReqUp:     reg.Gauge("partitions_in_flight"),
		mJobs:      reg.Counter("jobs_total"),
		mParts:     reg.Counter("partitions_total"),
		mRuns:      reg.Counter("runs_completed_total"),
		mErrors:    reg.Counter("errors_total"),
		mCutHist:   reg.Histogram("cut_nets", 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
		mLatency:   reg.Latency("partition_latency", 1024),
	}
	reg.Func("uptime_seconds", func() any { return int64(time.Since(s.start).Seconds()) })
	return s
}

// mux routes the API.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/partition", s.handlePartition)
	m.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	m.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	m.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.Handle("GET /metrics", s.reg)
	return m
}

// partitionRequest is the decoded form of one partition query: the
// netlist plus the knobs from the URL query string.
type partitionRequest struct {
	netlist *prop.Netlist
	opts    prop.Options
	k       int
	timeout time.Duration
}

// partitionResponse is the JSON reply for both sync and async paths.
// Sides is []int rather than the library's []uint8: encoding/json
// serializes []uint8 ([]byte) as base64, and the API wants a plain 0/1
// array.
type partitionResponse struct {
	Algorithm   string  `json:"algorithm"`
	K           int     `json:"k"`
	CutCost     float64 `json:"cut_cost"`
	CutNets     int     `json:"cut_nets"`
	Runs        int     `json:"runs,omitempty"`
	BestRun     int     `json:"best_run,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Sides       []int   `json:"sides,omitempty"`
	Parts       []int   `json:"parts,omitempty"`
	PartWeights []int64 `json:"part_weights,omitempty"`
}

// decodeRequest parses query knobs and the netlist body. The body is the
// netlist itself: application/json selects the JSON netlist format,
// anything else is parsed as hMETIS .hgr text.
func (s *server) decodeRequest(r *http.Request) (*partitionRequest, error) {
	q := r.URL.Query()
	req := &partitionRequest{k: 2, timeout: s.defTimeout}
	req.opts = prop.Options{Algorithm: prop.AlgoPROP, Runs: 20, Seed: 1, Parallel: s.maxPar}

	var err error
	if v := q.Get("algo"); v != "" {
		req.opts.Algorithm = prop.Algorithm(v)
	}
	geti := func(name string, dst *int) {
		if err != nil {
			return
		}
		if v := q.Get(name); v != "" {
			n, e := strconv.Atoi(v)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = n
		}
	}
	getf := func(name string, dst *float64) {
		if err != nil {
			return
		}
		if v := q.Get(name); v != "" {
			f, e := strconv.ParseFloat(v, 64)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = f
		}
	}
	geti("runs", &req.opts.Runs)
	geti("k", &req.k)
	geti("la", &req.opts.LADepth)
	getf("r1", &req.opts.R1)
	getf("r2", &req.opts.R2)
	if v := q.Get("seed"); v != "" && err == nil {
		n, e := strconv.ParseInt(v, 10, 64)
		if e != nil {
			err = fmt.Errorf("bad seed %q", v)
		}
		req.opts.Seed = n
	}
	par := 0
	geti("par", &par)
	if par > 0 && par < req.opts.Parallel {
		req.opts.Parallel = par
	}
	timeoutMS := 0
	geti("timeout_ms", &timeoutMS)
	if timeoutMS > 0 {
		req.timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if err != nil {
		return nil, err
	}
	if req.k < 2 {
		return nil, fmt.Errorf("bad k %d: want ≥ 2", req.k)
	}
	if req.opts.Runs < 1 || req.opts.Runs > 10000 {
		return nil, fmt.Errorf("bad runs %d: want 1..10000", req.opts.Runs)
	}

	body := http.MaxBytesReader(nil, r.Body, s.maxBody)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		req.netlist, err = prop.ReadJSON(body)
	} else {
		req.netlist, err = prop.ReadHGR(body)
	}
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return req, nil
}

// run executes one partition request under its timeout, recording engine
// metrics as runs complete.
func (s *server) run(ctx context.Context, req *partitionRequest) (*partitionResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, req.timeout)
	defer cancel()
	req.opts.OnRun = func(u prop.RunUpdate) { s.mRuns.Inc() }

	start := time.Now()
	resp := &partitionResponse{Algorithm: string(req.opts.Algorithm), K: req.k}
	if req.k == 2 {
		res, err := prop.PartitionCtx(ctx, req.netlist, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Runs, resp.BestRun = res.Runs, res.BestRun
		resp.Sides = make([]int, len(res.Sides))
		for u, s := range res.Sides {
			resp.Sides[u] = int(s)
		}
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	} else {
		res, err := prop.KWayCtx(ctx, req.netlist, req.k, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Parts, resp.PartWeights = res.Parts, res.PartWeights
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	s.mParts.Inc()
	s.mCutHist.Observe(float64(resp.CutNets))
	s.mLatency.Observe(time.Since(start))
	return resp, nil
}

func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mReqUp.Add(1)
	defer s.mReqUp.Add(-1)
	resp, err := s.run(r.Context(), req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.fail(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobState is an async job's lifecycle phase.
type jobState string

const (
	jobPending   jobState = "pending"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// job is one async partition request.
type job struct {
	ID     string             `json:"id"`
	State  jobState           `json:"state"`
	Error  string             `json:"error,omitempty"`
	Result *partitionResponse `json:"result,omitempty"`

	req    *partitionRequest
	cancel context.CancelFunc
}

// jobStore is the in-memory async job registry.
type jobStore struct {
	mu   sync.Mutex
	next int
	jobs map[string]*job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: map[string]*job{}}
}

func (js *jobStore) add(req *partitionRequest, cancel context.CancelFunc) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.next++
	j := &job{ID: fmt.Sprintf("j%d", js.next), State: jobPending, req: req, cancel: cancel}
	js.jobs[j.ID] = j
	return j
}

func (js *jobStore) get(id string) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.jobs[id]
}

// snapshot returns a copy of the job's public fields for serialization.
func (js *jobStore) snapshot(id string) (job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j := js.jobs[id]
	if j == nil {
		return job{}, false
	}
	return job{ID: j.ID, State: j.State, Error: j.Error, Result: j.Result}, true
}

// transition updates a job's state under the store lock; from restricts
// the transition (empty matches any state). It reports success.
func (js *jobStore) transition(id string, from, to jobState, fn func(*job)) bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	j := js.jobs[id]
	if j == nil || (from != "" && j.State != from) {
		return false
	}
	j.State = to
	if fn != nil {
		fn(j)
	}
	return true
}

func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// The job outlives the submit request: detach from r.Context().
	ctx, cancel := context.WithCancel(context.Background())
	j := s.jobs.add(req, cancel)
	s.mJobs.Inc()
	s.mJobsUp.Add(1)
	go s.runJob(ctx, j.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": string(jobPending)})
}

// runJob drives one async job to completion.
func (s *server) runJob(ctx context.Context, id string) {
	defer s.mJobsUp.Add(-1)
	if !s.jobs.transition(id, jobPending, jobRunning, nil) {
		return // cancelled before starting
	}
	j := s.jobs.get(id)
	resp, err := s.run(ctx, j.req)
	if err != nil {
		to := jobFailed
		if ctx.Err() == context.Canceled {
			to = jobCancelled
		}
		s.mErrors.Inc()
		s.jobs.transition(id, jobRunning, to, func(j *job) { j.Error = err.Error() })
		return
	}
	s.jobs.transition(id, jobRunning, jobDone, func(j *job) { j.Result = resp })
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.snapshot(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobs.get(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	// Pending jobs flip straight to cancelled; running jobs get their
	// context cancelled and the runner records the final state.
	s.jobs.transition(id, jobPending, jobCancelled, nil)
	j.cancel()
	snap, _ := s.jobs.snapshot(id)
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.mErrors.Inc()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
