package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prop"
	"prop/internal/cache"
	"prop/internal/metrics"
	"prop/internal/obs"
)

// serverConfig sizes a server's resource bounds. The zero value of any
// field selects its default.
type serverConfig struct {
	maxPar     int           // cap on per-request Parallel
	defTimeout time.Duration // per-request compute budget
	maxJobs    int           // cap on pending+running async jobs (< 0 unbounded)
	jobHistory int           // terminal jobs retained for GET (< 0 unbounded)
	jobTTL     time.Duration // terminal jobs evicted after this (< 0 never)
	cacheSize  int           // /v1/partition result-cache entries (< 0 disables)
	slowRun    time.Duration // warn when a job's compute exceeds this (0 disables)
}

func (c serverConfig) withDefaults() serverConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&c.maxJobs, 64)
	def(&c.jobHistory, 256)
	def(&c.cacheSize, 128)
	if c.jobTTL == 0 {
		c.jobTTL = 15 * time.Minute
	} else if c.jobTTL < 0 {
		c.jobTTL = 0
	}
	if c.defTimeout == 0 {
		c.defTimeout = 60 * time.Second
	}
	return c
}

// cacheKey identifies a /v1/partition result: content hashes of the
// netlist and the result-determining options, plus the part count.
// Parallelism and tracing knobs are deliberately absent — results are
// bit-identical across them, so serving a cached payload is correct.
type cacheKey struct {
	netlist uint64
	options uint64
	k       int
}

// server carries the HTTP handlers, the async job store, and the metric
// instruments. One server fronts one shared concurrent engine
// configuration (maxPar worker goroutines per request portfolio).
type server struct {
	maxPar     int           // cap on per-request Parallel
	maxBody    int64         // request body limit, bytes
	defTimeout time.Duration // per-request compute budget
	slowRun    time.Duration // warn when a job's compute exceeds this (0 disables)
	jobs       *jobStore
	results    *cache.Cache[cacheKey, []byte] // nil when disabled
	start      time.Time
	log        *slog.Logger

	reg         *metrics.Registry
	mJobsUp     *metrics.Gauge   // async jobs currently queued or running
	mReqUp      *metrics.Gauge   // synchronous partitions in flight
	mJobs       *metrics.Counter // async jobs accepted
	mParts      *metrics.Counter // partitions completed (sync + async)
	mReparts    *metrics.Counter // incremental repartitions completed
	mRuns       *metrics.Counter // multi-start runs completed
	mErrors     *metrics.Counter // requests rejected or failed
	mBusy       *metrics.Counter // job submissions rejected with 429
	mCutHist    *metrics.Histogram
	mPassHist   *metrics.Histogram    // improvement passes per run
	mCutImprove *metrics.FloatGauge   // (worst-best)/worst ×100 of last portfolio
	mRefineUtil *metrics.FloatGauge   // refinement worker busy/wall ×100
	mMoveWork   *metrics.Gauge        // effective move_workers of the last request
	mPhaseHist  *metrics.HistogramVec // per-phase wall durations, labeled by phase name
	mLatency    *metrics.Latency
}

func newServer(cfg serverConfig, logger *slog.Logger) *server {
	cfg = cfg.withDefaults()
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := metrics.NewRegistry()
	s := &server{
		maxPar:      cfg.maxPar,
		maxBody:     64 << 20,
		defTimeout:  cfg.defTimeout,
		slowRun:     cfg.slowRun,
		jobs:        newJobStore(cfg.maxJobs, cfg.jobHistory, cfg.jobTTL),
		start:       time.Now(),
		log:         logger,
		reg:         reg,
		mJobsUp:     reg.Gauge("jobs_in_flight"),
		mReqUp:      reg.Gauge("partitions_in_flight"),
		mJobs:       reg.Counter("jobs_total"),
		mParts:      reg.Counter("partitions_total"),
		mReparts:    reg.Counter("repartitions_total"),
		mRuns:       reg.Counter("runs_completed_total"),
		mErrors:     reg.Counter("errors_total"),
		mBusy:       reg.Counter("jobs_rejected_total"),
		mCutHist:    reg.Histogram("cut_nets", 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
		mPassHist:   reg.Histogram("passes_per_run", 1, 2, 3, 4, 5, 6, 8, 10, 15, 20),
		mCutImprove: reg.FloatGauge("cut_improvement_pct"),
		mRefineUtil: reg.FloatGauge("refine_worker_utilization_pct"),
		mMoveWork:   reg.Gauge("move_workers"),
		mPhaseHist:  reg.HistogramVec("phase_duration_ms", "phase", 1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000),
		mLatency:    reg.Latency("partition_latency", 1024),
	}
	reg.Func("uptime_seconds", func() any { return int64(time.Since(s.start).Seconds()) })
	if cfg.cacheSize > 0 {
		s.results = cache.New[cacheKey, []byte](cfg.cacheSize)
		reg.Func("result_cache_hits_total", func() any { return int64(s.results.Hits()) })
		reg.Func("result_cache_misses_total", func() any { return int64(s.results.Misses()) })
		reg.Func("result_cache_entries", func() any { return int64(s.results.Len()) })
	}
	return s
}

// mux routes the API.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/partition", s.handlePartition)
	m.HandleFunc("POST /v1/repartition", s.handleRepartition)
	m.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	m.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	m.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	m.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.Handle("GET /metrics", s.reg)
	m.HandleFunc("GET /debug/runs", s.handleRunsList)
	m.HandleFunc("GET /debug/trace/{id}", s.handleTraceGet)
	m.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handler wraps the mux in the request-logging middleware: every request
// gets a fresh run ID (propagated via context to the engine and the
// logs), and one structured log line records method, path, status, and
// latency.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewID()
		r = r.WithContext(obs.WithRunID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"latency_ms", float64(time.Since(start))/float64(time.Millisecond),
			"run_id", id,
		)
	})
}

// partitionRequest is the decoded form of one partition query: the
// netlist plus the knobs from the URL query string.
type partitionRequest struct {
	netlist *prop.Netlist
	opts    prop.Options
	k       int
	timeout time.Duration
	// traced marks an async job submitted with ?trace=..., whose JSONL
	// trajectory is served at /debug/trace/{id} afterwards.
	traced     bool
	traceLevel prop.TraceLevel
}

// partitionResponse is the JSON reply for both sync and async paths.
// Sides is []int rather than the library's []uint8: encoding/json
// serializes []uint8 ([]byte) as base64, and the API wants a plain 0/1
// array. Passes is the improvement-pass total summed over every
// completed run of the portfolio.
type partitionResponse struct {
	Algorithm   string  `json:"algorithm"`
	K           int     `json:"k"`
	CutCost     float64 `json:"cut_cost"`
	CutNets     int     `json:"cut_nets"`
	Runs        int     `json:"runs,omitempty"`
	BestRun     int     `json:"best_run,omitempty"`
	Passes      int     `json:"passes,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Sides       []int   `json:"sides,omitempty"`
	Parts       []int   `json:"parts,omitempty"`
	PartWeights []int64 `json:"part_weights,omitempty"`
}

// decodeQuery parses the shared query knobs (algo, runs, seed, k, r1,
// r2, par, move_workers, timeout_ms, trace) into a bodyless request.
func (s *server) decodeQuery(r *http.Request) (*partitionRequest, error) {
	q := r.URL.Query()
	req := &partitionRequest{k: 2, timeout: s.defTimeout}
	req.opts = prop.Options{Algorithm: prop.AlgoPROP, Runs: 20, Seed: 1, Parallel: s.maxPar}

	var err error
	if v := q.Get("algo"); v != "" {
		a := prop.Algorithm(v)
		if !a.Valid() {
			return nil, fmt.Errorf("unknown algo %q (GET /v1/algorithms lists the supported set)", v)
		}
		req.opts.Algorithm = a
	}
	geti := func(name string, dst *int) {
		if err != nil {
			return
		}
		if v := q.Get(name); v != "" {
			n, e := strconv.Atoi(v)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = n
		}
	}
	getf := func(name string, dst *float64) {
		if err != nil {
			return
		}
		if v := q.Get(name); v != "" {
			f, e := strconv.ParseFloat(v, 64)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = f
		}
	}
	geti("runs", &req.opts.Runs)
	geti("k", &req.k)
	geti("la", &req.opts.LADepth)
	getf("r1", &req.opts.R1)
	getf("r2", &req.opts.R2)
	if v := q.Get("seed"); v != "" && err == nil {
		n, e := strconv.ParseInt(v, 10, 64)
		if e != nil {
			err = fmt.Errorf("bad seed %q", v)
		}
		req.opts.Seed = n
	}
	par := 0
	geti("par", &par)
	if par > 0 && par < req.opts.Parallel {
		req.opts.Parallel = par
	}
	// move_workers selects the synchronous-round parallel move loop inside
	// each run; unlike par it changes which (bit-identical across positive
	// values) trajectory runs, so zero is not a valid explicit choice —
	// omit the parameter for the serial loop.
	if v := q.Get("move_workers"); v != "" && err == nil {
		n, e := strconv.Atoi(v)
		if e != nil || n <= 0 {
			err = fmt.Errorf("bad move_workers %q: want a positive integer", v)
		} else {
			req.opts.MoveWorkers = n
		}
	}
	timeoutMS := 0
	geti("timeout_ms", &timeoutMS)
	if timeoutMS > 0 {
		req.timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if v := q.Get("trace"); v != "" && err == nil {
		lvl, ok := obs.ParseLevel(v)
		if v == "1" {
			lvl, ok = prop.TracePasses, true
		}
		if !ok {
			err = fmt.Errorf("bad trace %q: want 1, run, pass, or move", v)
		}
		req.traced, req.traceLevel = true, lvl
	}
	if err != nil {
		return nil, err
	}
	if req.k < 2 {
		return nil, fmt.Errorf("bad k %d: want ≥ 2", req.k)
	}
	if req.opts.Algorithm == prop.AlgoFlow && req.k != 2 {
		// The corridor max-flow stage refines bisections; fail fast before
		// the body is read instead of deep inside the k-way recursion.
		return nil, fmt.Errorf("algo %q supports k=2 only (got k=%d)", prop.AlgoFlow, req.k)
	}
	if req.opts.Runs < 1 || req.opts.Runs > 10000 {
		return nil, fmt.Errorf("bad runs %d: want 1..10000", req.opts.Runs)
	}
	s.mMoveWork.Set(int64(req.opts.MoveWorkers))
	return req, nil
}

// decodeRequest parses query knobs and the netlist body. The body is the
// netlist itself: application/json selects the JSON netlist format,
// anything else is parsed as hMETIS .hgr text.
func (s *server) decodeRequest(r *http.Request) (*partitionRequest, error) {
	req, err := s.decodeQuery(r)
	if err != nil {
		return nil, err
	}
	body := http.MaxBytesReader(nil, r.Body, s.maxBody)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		req.netlist, err = prop.ReadJSON(body)
	} else {
		req.netlist, err = prop.ReadHGR(body)
	}
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return req, nil
}

// run executes one partition request under its timeout, recording engine
// metrics as runs complete. runID labels per-run debug logs and, when tr
// is non-nil, the emitted trace spans.
func (s *server) run(ctx context.Context, req *partitionRequest, runID string, tr *prop.Tracer) (*partitionResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, req.timeout)
	defer cancel()
	req.opts.Tracer = tr
	if req.opts.TraceID == "" {
		req.opts.TraceID = runID
	}
	// OnRun calls are serialized within one portfolio, but the recursive
	// k-way path runs sibling portfolios concurrently — the best/worst
	// tracking needs its own lock.
	var statMu sync.Mutex
	var bestCut, worstCut float64
	seen, passTotal := 0, 0
	req.opts.OnRun = func(u prop.RunUpdate) {
		s.mRuns.Inc()
		if u.Passes > 0 {
			s.mPassHist.Observe(float64(u.Passes))
		}
		if u.RefineUtilization > 0 {
			s.mRefineUtil.Set(u.RefineUtilization * 100)
		}
		statMu.Lock()
		if seen == 0 || u.CutCost < bestCut {
			bestCut = u.CutCost
		}
		if seen == 0 || u.CutCost > worstCut {
			worstCut = u.CutCost
		}
		seen++
		passTotal += u.Passes
		statMu.Unlock()
		s.log.Debug("run complete",
			"run", u.Run, "cut_cost", u.CutCost, "cut_nets", u.CutNets,
			"passes", u.Passes, "run_id", runID)
	}

	start := time.Now()
	resp := &partitionResponse{Algorithm: string(req.opts.Algorithm), K: req.k}
	if req.k == 2 {
		res, err := prop.PartitionCtx(ctx, req.netlist, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Runs, resp.BestRun = res.Runs, res.BestRun
		resp.Sides = make([]int, len(res.Sides))
		for u, s := range res.Sides {
			resp.Sides[u] = int(s)
		}
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	} else {
		res, err := prop.KWayCtx(ctx, req.netlist, req.k, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Parts, resp.PartWeights = res.Parts, res.PartWeights
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	s.mParts.Inc()
	s.mCutHist.Observe(float64(resp.CutNets))
	s.mLatency.Observe(time.Since(start))
	statMu.Lock()
	resp.Passes = passTotal
	if seen > 1 && worstCut > 0 {
		s.mCutImprove.Set((worstCut - bestCut) / worstCut * 100)
	}
	statMu.Unlock()
	return resp, nil
}

// observePhase feeds one completed phase span into the per-phase duration
// histogram family. Installed as a tracer phase hook on every engine run
// the server drives, traced or not.
func (s *server) observePhase(p obs.Phase) {
	s.mPhaseHist.Observe(p.Name, float64(p.Wall)/float64(time.Millisecond))
}

func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Result cache: keyed on content, not request bytes, so e.g. the same
	// netlist in .hgr and JSON form, or with a different par=, still hits.
	// Hits replay the exact payload bytes the populating miss sent.
	var key cacheKey
	if s.results != nil {
		key = cacheKey{netlist: req.netlist.Fingerprint(), options: req.opts.Fingerprint(), k: req.k}
		if payload, ok := s.results.Get(key); ok {
			s.log.Info("cache hit", "run_id", obs.RunID(r.Context()))
			w.Header().Set("X-Cache", "hit")
			writeJSONBytes(w, http.StatusOK, payload)
			return
		}
	}
	s.mReqUp.Add(1)
	defer s.mReqUp.Add(-1)
	// Even an untraced sync request runs under a discard tracer so its
	// phase spans land in the phase_duration_ms histograms.
	tr := prop.NewTracer(io.Discard, prop.TraceRuns).WithPhaseHook(s.observePhase)
	resp, err := s.run(r.Context(), req, obs.RunID(r.Context()), tr)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.fail(w, status, err)
		return
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	payload = append(payload, '\n')
	if s.results != nil {
		s.results.Put(key, payload)
		w.Header().Set("X-Cache", "miss")
	}
	writeJSONBytes(w, http.StatusOK, payload)
}

// jobState is an async job's lifecycle phase.
type jobState string

const (
	jobPending   jobState = "pending"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// traceBuf is a concurrency-safe sink for a job's JSONL trace. The
// tracer serializes its own writes, but /debug/trace/{id} reads while
// the job may still be emitting.
type traceBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (t *traceBuf) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Write(p)
}

func (t *traceBuf) snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buf.Bytes()...)
}

// terminal reports whether a state ends a job's lifecycle.
func (s jobState) terminal() bool {
	return s == jobDone || s == jobFailed || s == jobCancelled
}

// job is one async partition request. Progress is populated only on
// snapshots of a live (non-terminal) job: the atomically updated phase /
// pass / best-cut view the engine's tracer maintains while it runs.
type job struct {
	ID    string   `json:"id"`
	State jobState `json:"state"`
	// MoveWorkers is the effective parallel-move-loop worker count the job
	// runs with (0 = serial move loop).
	MoveWorkers int                   `json:"move_workers"`
	Progress    *obs.ProgressSnapshot `json:"progress,omitempty"`
	Error       string                `json:"error,omitempty"`
	Result      *partitionResponse    `json:"result,omitempty"`

	req      *partitionRequest
	cancel   context.CancelFunc
	trace    *traceBuf     // non-nil iff submitted with ?trace=...
	progress *obs.Progress // live-progress sink, attached to the job's tracer
	finished time.Time     // when the job reached a terminal state
}

// jobStore is the in-memory async job registry. It is bounded two ways:
// at most maxActive jobs may be pending or running at once (add refuses
// past that, and the caller answers 429), and terminal jobs are retained
// only until maxDone newer ones displace them (LRU) or they outlive ttl —
// without this the map, and every kept netlist, grows without bound.
type jobStore struct {
	mu        sync.Mutex
	next      int
	jobs      map[string]*job
	active    int           // jobs currently pending or running
	maxActive int           // 0 = unbounded
	maxDone   int           // 0 = unbounded
	ttl       time.Duration // 0 = never expire
	done      []string      // terminal job IDs, oldest first
	now       func() time.Time
}

func newJobStore(maxActive, maxDone int, ttl time.Duration) *jobStore {
	return &jobStore{
		jobs:      map[string]*job{},
		maxActive: maxActive,
		maxDone:   maxDone,
		ttl:       ttl,
		now:       time.Now,
	}
}

// evictLocked drops terminal jobs beyond the history cap or past their
// TTL. Callers hold js.mu.
func (js *jobStore) evictLocked() {
	for len(js.done) > 0 {
		id := js.done[0]
		over := js.maxDone > 0 && len(js.done) > js.maxDone
		expired := js.ttl > 0 && js.now().Sub(js.jobs[id].finished) > js.ttl
		if !over && !expired {
			return
		}
		delete(js.jobs, id)
		js.done = js.done[1:]
	}
}

// add registers a new pending job, or returns nil when the in-flight cap
// is reached (the caller converts that to 429 + Retry-After).
func (js *jobStore) add(req *partitionRequest, cancel context.CancelFunc) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.evictLocked()
	if js.maxActive > 0 && js.active >= js.maxActive {
		return nil
	}
	js.active++
	js.next++
	j := &job{ID: fmt.Sprintf("j%d", js.next), State: jobPending,
		MoveWorkers: req.opts.MoveWorkers, req: req, cancel: cancel,
		progress: &obs.Progress{}}
	if req.traced {
		j.trace = &traceBuf{}
	}
	js.jobs[j.ID] = j
	return j
}

func (js *jobStore) get(id string) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.evictLocked()
	return js.jobs[id]
}

// snapshotLocked copies the job's public fields for serialization. A
// non-terminal job additionally carries its live progress view; once the
// job finishes, Result supersedes it. Callers hold js.mu.
func (js *jobStore) snapshotLocked(j *job) job {
	out := job{ID: j.ID, State: j.State, MoveWorkers: j.MoveWorkers,
		Error: j.Error, Result: j.Result}
	if !j.State.terminal() {
		p := j.progress.Snapshot()
		out.Progress = &p
	}
	return out
}

// snapshot returns a copy of the job's public fields for serialization.
func (js *jobStore) snapshot(id string) (job, bool) {
	j := js.get(id)
	if j == nil {
		return job{}, false
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.snapshotLocked(j), true
}

// inflight snapshots every pending or running job, oldest first.
func (js *jobStore) inflight() []job {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]job, 0, js.active)
	for _, j := range js.jobs {
		if !j.State.terminal() {
			out = append(out, js.snapshotLocked(j))
		}
	}
	sort.Slice(out, func(a, b int) bool {
		// IDs are "j<seq>"; numeric order is submission order.
		x, _ := strconv.Atoi(out[a].ID[1:])
		y, _ := strconv.Atoi(out[b].ID[1:])
		return x < y
	})
	return out
}

// transition updates a job's state under the store lock; from restricts
// the transition (empty matches any state). A transition into a terminal
// state frees the job's in-flight slot and starts its retention clock.
// It reports success.
func (js *jobStore) transition(id string, from, to jobState, fn func(*job)) bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	j := js.jobs[id]
	if j == nil || (from != "" && j.State != from) {
		return false
	}
	wasTerminal := j.State.terminal()
	j.State = to
	if fn != nil {
		fn(j)
	}
	if to.terminal() && !wasTerminal {
		js.active--
		j.finished = js.now()
		js.done = append(js.done, id)
		js.evictLocked()
	}
	return true
}

func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// The job outlives the submit request, but its run ID carries over:
	// detach from r.Context() while re-attaching the ID.
	runID := obs.RunID(r.Context())
	ctx, cancel := context.WithCancel(obs.WithRunID(context.Background(), runID))
	j := s.jobs.add(req, cancel)
	if j == nil {
		cancel()
		s.mBusy.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, fmt.Errorf("job queue full (%d in flight)", s.jobs.maxActive))
		return
	}
	s.mJobs.Inc()
	s.mJobsUp.Add(1)
	s.log.Info("job accepted", "job", j.ID, "state", jobPending,
		"traced", req.traced, "run_id", runID)
	go s.runJob(ctx, j.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": string(jobPending)})
}

// runJob drives one async job to completion.
func (s *server) runJob(ctx context.Context, id string) {
	defer s.mJobsUp.Add(-1)
	runID := obs.RunID(ctx)
	if !s.jobs.transition(id, jobPending, jobRunning, nil) {
		s.log.Info("job state", "job", id, "state", jobCancelled, "run_id", runID)
		return // cancelled before starting
	}
	s.log.Info("job state", "job", id, "state", jobRunning, "run_id", runID)
	j := s.jobs.get(id)
	// Every job runs under a tracer: a traced submission records its JSONL
	// trajectory for /debug/trace/{id}, everything else traces into the
	// discard sink — either way the tracer drives the job's live-progress
	// snapshot (GET /v1/jobs/{id}, /debug/runs) and the per-phase duration
	// histograms. Pass level, because the engine only emits the pass events
	// that advance the progress view when the tracer asks for them.
	var sink io.Writer = io.Discard
	lvl := prop.TracePasses
	if j.trace != nil {
		sink, lvl = j.trace, j.req.traceLevel
		// Label the job's trace spans with the job ID so the JSONL served
		// at /debug/trace/{id} self-identifies; the run ID still ties the
		// job to its request logs.
		j.req.opts.TraceID = id
	}
	tr := prop.NewTracer(sink, lvl).WithProgress(j.progress).WithPhaseHook(s.observePhase)
	start := time.Now()
	resp, err := s.run(ctx, j.req, runID, tr)
	elapsedMS := float64(time.Since(start)) / float64(time.Millisecond)
	if s.slowRun > 0 && time.Since(start) > s.slowRun {
		s.log.Warn("slow run", "job", id, "algo", string(j.req.opts.Algorithm),
			"elapsed_ms", elapsedMS,
			"threshold_ms", float64(s.slowRun)/float64(time.Millisecond), "run_id", runID)
	}
	if err != nil {
		to := jobFailed
		if ctx.Err() == context.Canceled {
			to = jobCancelled
		}
		s.mErrors.Inc()
		s.jobs.transition(id, jobRunning, to, func(j *job) { j.Error = err.Error() })
		s.log.Warn("job state", "job", id, "state", to, "error", err.Error(),
			"elapsed_ms", elapsedMS, "run_id", runID)
		return
	}
	s.jobs.transition(id, jobRunning, jobDone, func(j *job) { j.Result = resp })
	s.log.Info("job state", "job", id, "state", jobDone,
		"algo", resp.Algorithm, "move_workers", j.MoveWorkers, "passes", resp.Passes,
		"cut_cost", resp.CutCost, "cut_nets", resp.CutNets,
		"elapsed_ms", elapsedMS, "run_id", runID)
}

// handleRunsList lists every in-flight (pending or running) job with its
// live-progress snapshot, oldest submission first.
func (s *server) handleRunsList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.jobs.inflight()})
}

// handleTraceGet serves the JSONL trace of a traced job.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobs.get(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if j.trace == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("job %q was not submitted with ?trace=", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.trace.snapshot())
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.snapshot(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobs.get(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	// Pending jobs flip straight to cancelled; running jobs get their
	// context cancelled and the runner records the final state.
	s.jobs.transition(id, jobPending, jobCancelled, nil)
	j.cancel()
	s.log.Info("job cancel requested", "job", id, "run_id", obs.RunID(r.Context()))
	snap, _ := s.jobs.snapshot(id)
	writeJSON(w, http.StatusOK, snap)
}

// repartitionRequest is the JSON body of POST /v1/repartition: the delta
// plus the base state, either inline (netlist + sides) or by reference to
// a finished 2-way job whose netlist and winning sides the server still
// retains.
type repartitionRequest struct {
	// BaseJob names a done async job to reuse as the base state.
	BaseJob string `json:"base_job,omitempty"`
	// Netlist is the base netlist in the JSON netlist format; Sides is its
	// previous side assignment. Both are ignored when BaseJob is set.
	Netlist json.RawMessage `json:"netlist,omitempty"`
	Sides   []int           `json:"sides,omitempty"`
	Delta   *prop.Delta     `json:"delta"`
}

// repartitionResponse extends the partition payload with what the delta
// did to the netlist.
type repartitionResponse struct {
	partitionResponse
	DeltaStructural bool `json:"delta_structural"`
	DeltaNewNodes   int  `json:"delta_new_nodes"`
	DeltaNewNets    int  `json:"delta_new_nets"`
	DeltaCollapsed  int  `json:"delta_collapsed_nets"`
}

// base resolves a finished 2-way job into its netlist and winning sides.
func (js *jobStore) base(id string) (*prop.Netlist, []uint8, error) {
	j := js.get(id)
	if j == nil {
		return nil, nil, fmt.Errorf("unknown base job %q (finished jobs are evicted after a while)", id)
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	if j.State != jobDone || j.Result == nil {
		return nil, nil, fmt.Errorf("base job %q is %s, want done", id, j.State)
	}
	if len(j.Result.Sides) == 0 {
		return nil, nil, fmt.Errorf("base job %q has no 2-way sides (k=%d)", id, j.Result.K)
	}
	sides := make([]uint8, len(j.Result.Sides))
	for u, v := range j.Result.Sides {
		sides[u] = uint8(v)
	}
	return j.req.netlist, sides, nil
}

// handleRepartition runs the incremental path: apply a netlist delta to a
// base state, project the previous sides through the mapping, and
// warm-start the partitioner (prop.RepartitionCtx) instead of solving
// from scratch.
func (s *server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var body repartitionRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.maxBody))
	if err := dec.Decode(&body); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return
	}
	if body.Delta == nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("body: missing delta"))
		return
	}
	var base *prop.Netlist
	var prevSides []uint8
	switch {
	case body.BaseJob != "":
		base, prevSides, err = s.jobs.base(body.BaseJob)
		if err != nil {
			s.fail(w, http.StatusNotFound, err)
			return
		}
	case len(body.Netlist) > 0:
		base, err = prop.ReadJSON(bytes.NewReader(body.Netlist))
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("netlist: %w", err))
			return
		}
		prevSides = make([]uint8, len(body.Sides))
		for u, v := range body.Sides {
			if v != 0 && v != 1 {
				s.fail(w, http.StatusBadRequest, fmt.Errorf("sides[%d] = %d, want 0 or 1", u, v))
				return
			}
			prevSides[u] = uint8(v)
		}
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("body: want base_job or netlist+sides"))
		return
	}

	s.mReqUp.Add(1)
	defer s.mReqUp.Add(-1)
	ctx, cancel := context.WithTimeout(r.Context(), req.timeout)
	defer cancel()
	runID := obs.RunID(r.Context())
	req.opts.OnRun = func(u prop.RunUpdate) { s.mRuns.Inc() }
	req.opts.TraceID = runID
	start := time.Now()
	_, res, err := prop.RepartitionCtx(ctx, base, prevSides, body.Delta, req.opts)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.fail(w, status, err)
		return
	}
	// The mapping is re-derived for the response: RepartitionCtx applied
	// the delta internally, and Apply is cheap next to the search.
	_, mp, err := base.ApplyDelta(body.Delta)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp := &repartitionResponse{
		partitionResponse: partitionResponse{
			Algorithm: string(req.opts.Algorithm),
			K:         2,
			CutCost:   res.CutCost,
			CutNets:   res.CutNets,
			Runs:      res.Runs,
			BestRun:   res.BestRun,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		},
		DeltaStructural: mp.Structural,
		DeltaNewNodes:   mp.NewNodes,
		DeltaNewNets:    mp.NewNets,
		DeltaCollapsed:  mp.CollapsedNets,
	}
	resp.Sides = make([]int, len(res.Sides))
	for u, side := range res.Sides {
		resp.Sides[u] = int(side)
	}
	s.mReparts.Inc()
	s.mParts.Inc()
	s.mCutHist.Observe(float64(resp.CutNets))
	s.mLatency.Observe(time.Since(start))
	s.log.Info("repartition", "cut_cost", res.CutCost, "cut_nets", res.CutNets,
		"structural", mp.Structural, "elapsed_ms", resp.ElapsedMS, "run_id", runID)
	writeJSON(w, http.StatusOK, resp)
}

// handleAlgorithms serves the algorithm feature matrix: which methods the
// server accepts for ?algo= and what each inherits from the shared
// move-engine layer.
func (s *server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": prop.AlgorithmInfos()})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.mErrors.Inc()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeJSONBytes sends an already-marshaled JSON payload — the cache path
// must replay the populating response byte for byte.
func writeJSONBytes(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
}
