package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prop"
	"prop/internal/cache"
	"prop/internal/jobs"
	"prop/internal/metrics"
	"prop/internal/obs"
	"prop/internal/sched"
)

// serverConfig sizes a server's resource bounds. The zero value of any
// field selects its default.
type serverConfig struct {
	maxPar       int           // cap on per-request Parallel
	defTimeout   time.Duration // per-request compute budget
	maxJobs      int           // cap on pending+running async jobs (< 0 unbounded)
	jobHistory   int           // terminal jobs retained for GET (< 0 unbounded)
	jobTTL       time.Duration // terminal jobs evicted after this (< 0 never)
	cacheSize    int           // /v1/partition result-cache entries (< 0 disables)
	slowRun      time.Duration // warn when a job's compute exceeds this (0 disables)
	maxBody      int64         // request body limit, bytes (0 selects 64 MiB)
	journalDir   string        // job journal directory ("" = memory-only)
	schedWorkers int           // concurrent async job slots
	tenantRate   float64       // per-tenant admissions/sec (0 = unlimited)
	tenantBurst  float64       // per-tenant admission burst
	batchMax     int           // max items per /v1/batch request (< 0 unbounded)

	fs  jobs.FS          // journal filesystem override (tests)
	now func() time.Time // job-store clock override (tests)
}

func (c serverConfig) withDefaults() serverConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&c.maxJobs, 64)
	def(&c.jobHistory, 256)
	def(&c.cacheSize, 128)
	def(&c.batchMax, 64)
	if c.jobTTL == 0 {
		c.jobTTL = 15 * time.Minute
	} else if c.jobTTL < 0 {
		c.jobTTL = 0
	}
	if c.defTimeout == 0 {
		c.defTimeout = 60 * time.Second
	}
	if c.maxBody <= 0 {
		c.maxBody = 64 << 20
	}
	if c.schedWorkers <= 0 {
		c.schedWorkers = runtime.GOMAXPROCS(0)
		if c.schedWorkers < 2 {
			c.schedWorkers = 2
		}
	}
	return c
}

// server carries the HTTP handlers, the durable job store, the fair-share
// scheduler, and the metric instruments. One server fronts one shared
// concurrent engine configuration (maxPar worker goroutines per request
// portfolio).
type server struct {
	maxPar     int           // cap on per-request Parallel
	maxBody    int64         // request body limit, bytes
	defTimeout time.Duration // per-request compute budget
	slowRun    time.Duration // warn when a job's compute exceeds this (0 disables)
	batchMax   int           // max items per /v1/batch request (0 = unbounded)

	store   *jobs.Store      // durable job records (journaled when configured)
	rt      *runtimeTable    // per-job volatile state: cancel, trace, progress
	sched   *sched.Scheduler // fair-share dispatch + per-tenant quotas
	results cache.Backend    // /v1/partition result cache; nil when disabled
	start   time.Time
	log     *slog.Logger

	// draining refuses new compute POSTs with 503 while in-flight jobs
	// finish and the journal flushes.
	draining atomic.Bool
	// baseCtx parents every async job's context; stopJobs cancels them all
	// for an abrupt close.
	baseCtx  context.Context
	stopJobs context.CancelFunc

	reg          *metrics.Registry
	mJobsUp      *metrics.Gauge   // async jobs currently queued or running
	mReqUp       *metrics.Gauge   // synchronous partitions in flight
	mJobs        *metrics.Counter // async jobs accepted
	mParts       *metrics.Counter // partitions completed (sync + async)
	mReparts     *metrics.Counter // incremental repartitions completed
	mRuns        *metrics.Counter // multi-start runs completed
	mErrors      *metrics.Counter // requests rejected or failed
	mBusy        *metrics.Counter // job submissions rejected with 429
	mCutHist     *metrics.Histogram
	mPassHist    *metrics.Histogram    // improvement passes per run
	mCutImprove  *metrics.FloatGauge   // (worst-best)/worst ×100 of last portfolio
	mRefineUtil  *metrics.FloatGauge   // refinement worker busy/wall ×100
	mMoveWork    *metrics.Gauge        // effective move_workers of the last request
	mPhaseHist   *metrics.HistogramVec // per-phase wall durations, labeled by phase name
	mLatency     *metrics.Latency
	mTenantOK    *metrics.CounterVec   // admissions per tenant
	mTenantRej   *metrics.CounterVec   // quota rejections per tenant
	mTenantDone  *metrics.CounterVec   // completed async jobs per tenant
	mTenantDepth *metrics.GaugeVec     // scheduler queue depth per tenant
	mQueueWait   *metrics.HistogramVec // ms between submit and dispatch, per tenant
}

// newServer builds the server, opening (and replaying) the job journal
// when one is configured. Recovered jobs are re-queued before it returns.
func newServer(cfg serverConfig, logger *slog.Logger) (*server, error) {
	cfg = cfg.withDefaults()
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := metrics.NewRegistry()
	s := &server{
		maxPar:       cfg.maxPar,
		maxBody:      cfg.maxBody,
		defTimeout:   cfg.defTimeout,
		slowRun:      cfg.slowRun,
		batchMax:     cfg.batchMax,
		rt:           newRuntimeTable(),
		start:        time.Now(),
		log:          logger,
		reg:          reg,
		mJobsUp:      reg.Gauge("jobs_in_flight"),
		mReqUp:       reg.Gauge("partitions_in_flight"),
		mJobs:        reg.Counter("jobs_total"),
		mParts:       reg.Counter("partitions_total"),
		mReparts:     reg.Counter("repartitions_total"),
		mRuns:        reg.Counter("runs_completed_total"),
		mErrors:      reg.Counter("errors_total"),
		mBusy:        reg.Counter("jobs_rejected_total"),
		mCutHist:     reg.Histogram("cut_nets", 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
		mPassHist:    reg.Histogram("passes_per_run", 1, 2, 3, 4, 5, 6, 8, 10, 15, 20),
		mCutImprove:  reg.FloatGauge("cut_improvement_pct"),
		mRefineUtil:  reg.FloatGauge("refine_worker_utilization_pct"),
		mMoveWork:    reg.Gauge("move_workers"),
		mPhaseHist:   reg.HistogramVec("phase_duration_ms", "phase", 1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000),
		mLatency:     reg.Latency("partition_latency", 1024),
		mTenantOK:    reg.CounterVec("tenant_admitted_total", "tenant"),
		mTenantRej:   reg.CounterVec("tenant_rejected_total", "tenant"),
		mTenantDone:  reg.CounterVec("tenant_jobs_completed_total", "tenant"),
		mTenantDepth: reg.GaugeVec("tenant_queue_depth", "tenant"),
		mQueueWait:   reg.HistogramVec("job_queue_wait_ms", "tenant", 1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000),
	}
	s.baseCtx, s.stopJobs = context.WithCancel(context.Background())
	reg.Func("uptime_seconds", func() any { return int64(time.Since(s.start).Seconds()) })
	if cfg.cacheSize > 0 {
		s.results = cache.NewLRU(cfg.cacheSize)
		reg.Func("result_cache_hits_total", func() any { h, _ := s.results.Stats(); return int64(h) })
		reg.Func("result_cache_misses_total", func() any { _, m := s.results.Stats(); return int64(m) })
		reg.Func("result_cache_entries", func() any { return int64(s.results.Len()) })
	}
	s.sched = sched.New(sched.Config{
		Workers: cfg.schedWorkers,
		Rate:    cfg.tenantRate,
		Burst:   cfg.tenantBurst,
		OnQueueDepth: func(tenant string, depth int) {
			s.mTenantDepth.With(tenant).Set(int64(depth))
		},
	})
	store, recovered, err := jobs.Open(jobs.Config{
		Dir:       cfg.journalDir,
		FS:        cfg.fs,
		Now:       cfg.now,
		MaxActive: cfg.maxJobs,
		MaxDone:   cfg.jobHistory,
		TTL:       cfg.jobTTL,
		// Payloads carry whole netlists; an 8 MiB segment keeps compaction
		// from rewriting the live set on every append.
		SegmentBytes: 8 << 20,
		OnEvict:      func(id string) { s.rt.drop(id) },
	})
	if err != nil {
		s.sched.Close()
		return nil, err
	}
	s.store = store
	s.resume(recovered)
	return s, nil
}

// mux routes the API.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/partition", s.handlePartition)
	m.HandleFunc("POST /v1/repartition", s.handleRepartition)
	m.HandleFunc("POST /v1/batch", s.handleBatch)
	m.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	m.HandleFunc("GET /v1/jobs", s.handleJobList)
	m.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	m.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	m.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.Handle("GET /metrics", s.reg)
	m.HandleFunc("GET /debug/runs", s.handleRunsList)
	m.HandleFunc("GET /debug/trace/{id}", s.handleTraceGet)
	m.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the /v1/batch NDJSON path) through
// the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handler wraps the mux in the request-logging middleware: every request
// gets a fresh run ID (propagated via context to the engine and the
// logs), and one structured log line records method, path, status, and
// latency.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewID()
		r = r.WithContext(obs.WithRunID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"latency_ms", float64(time.Since(start))/float64(time.Millisecond),
			"run_id", id,
		)
	})
}

// tenantRe limits tenant names to a filesystem- and metrics-label-safe
// alphabet.
var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// defaultTenant is the quota/fair-share bucket of requests that carry no
// X-Tenant header.
const defaultTenant = "default"

// tenantOf extracts and validates the request's tenant.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return defaultTenant, nil
	}
	if !tenantRe.MatchString(t) {
		return "", fmt.Errorf("bad X-Tenant %q: want 1-64 chars of [A-Za-z0-9._-]", t)
	}
	return t, nil
}

// gate applies the preconditions every compute POST shares: refuse new
// work while draining, validate the tenant, and — when charge is set —
// take one admission token from the tenant's quota bucket. It reports
// the tenant and whether the request may proceed (the failure response
// has already been written when not).
func (s *server) gate(w http.ResponseWriter, r *http.Request, charge bool) (string, bool) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return "", false
	}
	tenant, err := tenantOf(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return "", false
	}
	if charge && !s.chargeQuota(tenant) {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, fmt.Errorf("tenant %q over admission quota", tenant))
		return "", false
	}
	return tenant, true
}

// chargeQuota takes one admission token for the tenant, recording the
// outcome in the per-tenant counters.
func (s *server) chargeQuota(tenant string) bool {
	if !s.sched.Admit(tenant) {
		s.mTenantRej.With(tenant).Inc()
		return false
	}
	s.mTenantOK.With(tenant).Inc()
	return true
}

// limitBody caps the request body at the server's limit; reads past it
// fail with *http.MaxBytesError, which failParse maps to 413.
func (s *server) limitBody(w http.ResponseWriter, r *http.Request) io.ReadCloser {
	return http.MaxBytesReader(w, r.Body, s.maxBody)
}

// failParse answers a body decode error: 413 when the body blew the size
// limit, 400 otherwise. The netlist parsers may wrap or swallow the
// *http.MaxBytesError, so the message is checked as a fallback.
func (s *server) failParse(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) || strings.Contains(err.Error(), "request body too large") {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", s.maxBody))
		return
	}
	s.fail(w, http.StatusBadRequest, err)
}

// partitionRequest is the decoded form of one partition query: the
// netlist plus the knobs from the URL query string.
type partitionRequest struct {
	netlist *prop.Netlist
	opts    prop.Options
	k       int
	timeout time.Duration
	// traced marks an async job submitted with ?trace=..., whose JSONL
	// trajectory is served at /debug/trace/{id} afterwards.
	traced     bool
	traceLevel prop.TraceLevel
}

// partitionResponse is the JSON reply for both sync and async paths.
// Sides is []int rather than the library's []uint8: encoding/json
// serializes []uint8 ([]byte) as base64, and the API wants a plain 0/1
// array. Passes is the improvement-pass total summed over every
// completed run of the portfolio.
type partitionResponse struct {
	Algorithm   string  `json:"algorithm"`
	K           int     `json:"k"`
	CutCost     float64 `json:"cut_cost"`
	CutNets     int     `json:"cut_nets"`
	Runs        int     `json:"runs,omitempty"`
	BestRun     int     `json:"best_run,omitempty"`
	Passes      int     `json:"passes,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Sides       []int   `json:"sides,omitempty"`
	Parts       []int   `json:"parts,omitempty"`
	PartWeights []int64 `json:"part_weights,omitempty"`
}

// decodeQuery parses the shared query knobs (algo, runs, seed, k, r1,
// r2, par, move_workers, timeout_ms, trace) of an HTTP request.
func (s *server) decodeQuery(r *http.Request) (*partitionRequest, error) {
	return s.decodeQueryValues(r.URL.Query())
}

// decodeQueryValues parses the shared query knobs from raw values — the
// form both live requests and journaled job payloads share.
func (s *server) decodeQueryValues(q map[string][]string) (*partitionRequest, error) {
	get := func(name string) string {
		if vs := q[name]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	req := &partitionRequest{k: 2, timeout: s.defTimeout}
	req.opts = prop.Options{Algorithm: prop.AlgoPROP, Runs: 20, Seed: 1, Parallel: s.maxPar}

	var err error
	if v := get("algo"); v != "" {
		a := prop.Algorithm(v)
		if !a.Valid() {
			return nil, fmt.Errorf("unknown algo %q (GET /v1/algorithms lists the supported set)", v)
		}
		req.opts.Algorithm = a
	}
	geti := func(name string, dst *int) {
		if err != nil {
			return
		}
		if v := get(name); v != "" {
			n, e := strconv.Atoi(v)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = n
		}
	}
	getf := func(name string, dst *float64) {
		if err != nil {
			return
		}
		if v := get(name); v != "" {
			f, e := strconv.ParseFloat(v, 64)
			if e != nil {
				err = fmt.Errorf("bad %s %q", name, v)
				return
			}
			*dst = f
		}
	}
	geti("runs", &req.opts.Runs)
	geti("k", &req.k)
	geti("la", &req.opts.LADepth)
	getf("r1", &req.opts.R1)
	getf("r2", &req.opts.R2)
	if v := get("seed"); v != "" && err == nil {
		n, e := strconv.ParseInt(v, 10, 64)
		if e != nil {
			err = fmt.Errorf("bad seed %q", v)
		}
		req.opts.Seed = n
	}
	par := 0
	geti("par", &par)
	if par > 0 && par < req.opts.Parallel {
		req.opts.Parallel = par
	}
	// move_workers selects the synchronous-round parallel move loop inside
	// each run; unlike par it changes which (bit-identical across positive
	// values) trajectory runs, so zero is not a valid explicit choice —
	// omit the parameter for the serial loop.
	if v := get("move_workers"); v != "" && err == nil {
		n, e := strconv.Atoi(v)
		if e != nil || n <= 0 {
			err = fmt.Errorf("bad move_workers %q: want a positive integer", v)
		} else {
			req.opts.MoveWorkers = n
		}
	}
	// mode selects the ml-prop hierarchy style; it changes which hierarchy
	// (and therefore which result) runs, so it participates in the result
	// cache fingerprint via Options.ML.
	if v := get("mode"); v != "" && err == nil {
		if v != "vcycle" && v != "nlevel" {
			err = fmt.Errorf("bad mode %q: want vcycle or nlevel", v)
		} else if req.opts.Algorithm != prop.AlgoMLPROP {
			err = fmt.Errorf("mode applies to algo %q only (got algo %q)", prop.AlgoMLPROP, req.opts.Algorithm)
		} else {
			req.opts.ML = &prop.MLParams{Mode: v}
		}
	}
	timeoutMS := 0
	geti("timeout_ms", &timeoutMS)
	if timeoutMS > 0 {
		req.timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if v := get("trace"); v != "" && err == nil {
		lvl, ok := obs.ParseLevel(v)
		if v == "1" {
			lvl, ok = prop.TracePasses, true
		}
		if !ok {
			err = fmt.Errorf("bad trace %q: want 1, run, pass, or move", v)
		}
		req.traced, req.traceLevel = true, lvl
	}
	if err != nil {
		return nil, err
	}
	if req.k < 2 {
		return nil, fmt.Errorf("bad k %d: want ≥ 2", req.k)
	}
	if req.opts.Algorithm == prop.AlgoFlow && req.k != 2 {
		// The corridor max-flow stage refines bisections; fail fast before
		// the body is read instead of deep inside the k-way recursion.
		return nil, fmt.Errorf("algo %q supports k=2 only (got k=%d)", prop.AlgoFlow, req.k)
	}
	if req.opts.Runs < 1 || req.opts.Runs > 10000 {
		return nil, fmt.Errorf("bad runs %d: want 1..10000", req.opts.Runs)
	}
	s.mMoveWork.Set(int64(req.opts.MoveWorkers))
	return req, nil
}

// parseNetlist decodes netlist bytes by content type: application/json
// selects the JSON netlist format, anything else hMETIS .hgr text.
func parseNetlist(contentType string, data []byte) (*prop.Netlist, error) {
	if strings.HasPrefix(contentType, "application/json") {
		return prop.ReadJSON(bytes.NewReader(data))
	}
	return prop.ReadHGR(bytes.NewReader(data))
}

// decodeRequest parses query knobs and the netlist body. The body is the
// netlist itself: application/json selects the JSON netlist format,
// anything else is parsed as hMETIS .hgr text.
func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request) (*partitionRequest, error) {
	req, err := s.decodeQuery(r)
	if err != nil {
		return nil, err
	}
	body := s.limitBody(w, r)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		req.netlist, err = prop.ReadJSON(body)
	} else {
		req.netlist, err = prop.ReadHGR(body)
	}
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return req, nil
}

// run executes one partition request under its timeout, recording engine
// metrics as runs complete. runID labels per-run debug logs and, when tr
// is non-nil, the emitted trace spans.
func (s *server) run(ctx context.Context, req *partitionRequest, runID string, tr *prop.Tracer) (*partitionResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, req.timeout)
	defer cancel()
	req.opts.Tracer = tr
	if req.opts.TraceID == "" {
		req.opts.TraceID = runID
	}
	// OnRun calls are serialized within one portfolio, but the recursive
	// k-way path runs sibling portfolios concurrently — the best/worst
	// tracking needs its own lock.
	var statMu sync.Mutex
	var bestCut, worstCut float64
	seen, passTotal := 0, 0
	req.opts.OnRun = func(u prop.RunUpdate) {
		s.mRuns.Inc()
		if u.Passes > 0 {
			s.mPassHist.Observe(float64(u.Passes))
		}
		if u.RefineUtilization > 0 {
			s.mRefineUtil.Set(u.RefineUtilization * 100)
		}
		statMu.Lock()
		if seen == 0 || u.CutCost < bestCut {
			bestCut = u.CutCost
		}
		if seen == 0 || u.CutCost > worstCut {
			worstCut = u.CutCost
		}
		seen++
		passTotal += u.Passes
		statMu.Unlock()
		s.log.Debug("run complete",
			"run", u.Run, "cut_cost", u.CutCost, "cut_nets", u.CutNets,
			"passes", u.Passes, "run_id", runID)
	}

	start := time.Now()
	resp := &partitionResponse{Algorithm: string(req.opts.Algorithm), K: req.k}
	if req.k == 2 {
		res, err := prop.PartitionCtx(ctx, req.netlist, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Runs, resp.BestRun = res.Runs, res.BestRun
		resp.Sides = make([]int, len(res.Sides))
		for u, s := range res.Sides {
			resp.Sides[u] = int(s)
		}
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	} else {
		res, err := prop.KWayCtx(ctx, req.netlist, req.k, req.opts)
		if err != nil {
			return nil, err
		}
		resp.CutCost, resp.CutNets = res.CutCost, res.CutNets
		resp.Parts, resp.PartWeights = res.Parts, res.PartWeights
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	s.mParts.Inc()
	s.mCutHist.Observe(float64(resp.CutNets))
	s.mLatency.Observe(time.Since(start))
	statMu.Lock()
	resp.Passes = passTotal
	if seen > 1 && worstCut > 0 {
		s.mCutImprove.Set((worstCut - bestCut) / worstCut * 100)
	}
	statMu.Unlock()
	return resp, nil
}

// observePhase feeds one completed phase span into the per-phase duration
// histogram family. Installed as a tracer phase hook on every engine run
// the server drives, traced or not.
func (s *server) observePhase(p obs.Phase) {
	s.mPhaseHist.Observe(p.Name, float64(p.Wall)/float64(time.Millisecond))
}

func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.gate(w, r, true); !ok {
		return
	}
	req, err := s.decodeRequest(w, r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	// Result cache: keyed on content, not request bytes, so e.g. the same
	// netlist in .hgr and JSON form, or with a different par=, still hits.
	// Hits replay the exact payload bytes the populating miss sent.
	var key cache.Key
	if s.results != nil {
		key = cache.Key{Kind: "partition", Netlist: req.netlist.Fingerprint(), Options: req.opts.Fingerprint(), K: req.k}
		if payload, ok := s.results.Get(key); ok {
			s.log.Info("cache hit", "run_id", obs.RunID(r.Context()))
			w.Header().Set("X-Cache", "hit")
			writeJSONBytes(w, http.StatusOK, payload)
			return
		}
	}
	s.mReqUp.Add(1)
	defer s.mReqUp.Add(-1)
	// Even an untraced sync request runs under a discard tracer so its
	// phase spans land in the phase_duration_ms histograms.
	tr := prop.NewTracer(io.Discard, prop.TraceRuns).WithPhaseHook(s.observePhase)
	resp, err := s.run(r.Context(), req, obs.RunID(r.Context()), tr)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.fail(w, status, err)
		return
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	payload = append(payload, '\n')
	if s.results != nil {
		s.results.Put(key, payload)
		w.Header().Set("X-Cache", "miss")
	}
	writeJSONBytes(w, http.StatusOK, payload)
}

// repartitionRequest is the JSON body of POST /v1/repartition (and of a
// /v1/batch delta item): the delta plus the base state, either inline
// (netlist + sides) or by reference to a finished 2-way job whose netlist
// and winning sides the server still retains.
type repartitionRequest struct {
	// BaseJob names a done async job to reuse as the base state.
	BaseJob string `json:"base_job,omitempty"`
	// Netlist is the base netlist in the JSON netlist format; Sides is its
	// previous side assignment. Both are ignored when BaseJob is set.
	Netlist json.RawMessage `json:"netlist,omitempty"`
	Sides   []int           `json:"sides,omitempty"`
	Delta   *prop.Delta     `json:"delta"`
}

// repartitionResponse extends the partition payload with what the delta
// did to the netlist.
type repartitionResponse struct {
	partitionResponse
	DeltaStructural bool `json:"delta_structural"`
	DeltaNewNodes   int  `json:"delta_new_nodes"`
	DeltaNewNets    int  `json:"delta_new_nets"`
	DeltaCollapsed  int  `json:"delta_collapsed_nets"`
}

// baseFromStore resolves a finished 2-way job into its netlist and
// winning sides, reconstructing both from the durable record — the
// journaled request payload and result — so the incremental path works
// identically for live and crash-recovered base jobs.
func (s *server) baseFromStore(id string) (*prop.Netlist, []uint8, error) {
	j, ok := s.store.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("unknown base job %q (finished jobs are evicted after a while)", id)
	}
	if j.State != jobs.Done || len(j.Result) == 0 {
		return nil, nil, fmt.Errorf("base job %q is %s, want done", id, j.State)
	}
	var pl jobPayload
	if err := json.Unmarshal(j.Payload, &pl); err != nil || pl.Kind != kindPartition {
		return nil, nil, fmt.Errorf("base job %q is not a partition job", id)
	}
	var res partitionResponse
	if err := json.Unmarshal(j.Result, &res); err != nil {
		return nil, nil, fmt.Errorf("base job %q result: %w", id, err)
	}
	if len(res.Sides) == 0 {
		return nil, nil, fmt.Errorf("base job %q has no 2-way sides (k=%d)", id, res.K)
	}
	nl, err := parseNetlist(pl.ContentType, pl.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("base job %q netlist: %w", id, err)
	}
	sides := make([]uint8, len(res.Sides))
	for u, v := range res.Sides {
		sides[u] = uint8(v)
	}
	return nl, sides, nil
}

// runRepartition executes the incremental path: apply a netlist delta to
// a base state, project the previous sides through the mapping, and
// warm-start the partitioner (prop.RepartitionCtx) instead of solving
// from scratch. On error the returned status is the HTTP code the
// synchronous handler should answer with.
func (s *server) runRepartition(ctx context.Context, req *partitionRequest, body *repartitionRequest, runID string) (*repartitionResponse, int, error) {
	if body.Delta == nil {
		return nil, http.StatusBadRequest, fmt.Errorf("body: missing delta")
	}
	var base *prop.Netlist
	var prevSides []uint8
	var err error
	switch {
	case body.BaseJob != "":
		base, prevSides, err = s.baseFromStore(body.BaseJob)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
	case len(body.Netlist) > 0:
		base, err = prop.ReadJSON(bytes.NewReader(body.Netlist))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("netlist: %w", err)
		}
		prevSides = make([]uint8, len(body.Sides))
		for u, v := range body.Sides {
			if v != 0 && v != 1 {
				return nil, http.StatusBadRequest, fmt.Errorf("sides[%d] = %d, want 0 or 1", u, v)
			}
			prevSides[u] = uint8(v)
		}
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("body: want base_job or netlist+sides")
	}

	ctx, cancel := context.WithTimeout(ctx, req.timeout)
	defer cancel()
	req.opts.OnRun = func(u prop.RunUpdate) { s.mRuns.Inc() }
	if req.opts.TraceID == "" {
		req.opts.TraceID = runID
	}
	start := time.Now()
	_, res, err := prop.RepartitionCtx(ctx, base, prevSides, body.Delta, req.opts)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		return nil, status, err
	}
	// The mapping is re-derived for the response: RepartitionCtx applied
	// the delta internally, and Apply is cheap next to the search.
	_, mp, err := base.ApplyDelta(body.Delta)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	resp := &repartitionResponse{
		partitionResponse: partitionResponse{
			Algorithm: string(req.opts.Algorithm),
			K:         2,
			CutCost:   res.CutCost,
			CutNets:   res.CutNets,
			Runs:      res.Runs,
			BestRun:   res.BestRun,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		},
		DeltaStructural: mp.Structural,
		DeltaNewNodes:   mp.NewNodes,
		DeltaNewNets:    mp.NewNets,
		DeltaCollapsed:  mp.CollapsedNets,
	}
	resp.Sides = make([]int, len(res.Sides))
	for u, side := range res.Sides {
		resp.Sides[u] = int(side)
	}
	s.mReparts.Inc()
	s.mParts.Inc()
	s.mCutHist.Observe(float64(resp.CutNets))
	s.mLatency.Observe(time.Since(start))
	s.log.Info("repartition", "cut_cost", res.CutCost, "cut_nets", res.CutNets,
		"structural", mp.Structural, "elapsed_ms", resp.ElapsedMS, "run_id", runID)
	return resp, 0, nil
}

func (s *server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.gate(w, r, true); !ok {
		return
	}
	req, err := s.decodeQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var body repartitionRequest
	if err := json.NewDecoder(s.limitBody(w, r)).Decode(&body); err != nil {
		s.failParse(w, fmt.Errorf("body: %w", err))
		return
	}
	s.mReqUp.Add(1)
	defer s.mReqUp.Add(-1)
	resp, status, err := s.runRepartition(r.Context(), req, &body, obs.RunID(r.Context()))
	if err != nil {
		s.fail(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAlgorithms serves the algorithm feature matrix: which methods the
// server accepts for ?algo= and what each inherits from the shared
// move-engine layer.
func (s *server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": prop.AlgorithmInfos()})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "draining",
			"uptime_s": int64(time.Since(s.start).Seconds()),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// beginDrain flips the server into drain mode: compute POSTs answer 503
// and healthz reports draining, while GETs keep serving results.
func (s *server) beginDrain() { s.draining.Store(true) }

// drain gracefully stops the serving core: it refuses new work, waits
// (up to ctx) for every queued and running job to finish, then closes
// the scheduler and flushes and closes the job journal.
func (s *server) drain(ctx context.Context) error {
	s.beginDrain()
	err := s.sched.Drain(ctx)
	if err != nil {
		// Out of patience: cancel what is still running so the worker pool
		// can be joined before the journal closes.
		s.stopJobs()
	}
	s.sched.Close()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// close abruptly releases the server's resources: in-flight jobs are
// cancelled rather than awaited. Tests use it; production exits call
// drain.
func (s *server) close() {
	s.beginDrain()
	s.stopJobs()
	s.sched.Close()
	_ = s.store.Close()
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.mErrors.Inc()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeJSONBytes sends an already-marshaled JSON payload — the cache path
// must replay the populating response byte for byte.
func writeJSONBytes(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
}
