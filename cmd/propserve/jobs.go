package main

// The durable async job layer. A job's durable half lives in the
// jobs.Store (journaled payload, state, result — everything a restart
// needs); its volatile half lives in the runtimeTable (cancel func, live
// progress, trace buffer — things that die with the process and are
// rebuilt on recovery). Submissions journal the raw request (query string
// + netlist bytes) before they are acknowledged, then dispatch through
// the fair-share scheduler; the executor re-parses the journaled payload
// every time, so a crash-recovered job runs through exactly the code path
// a fresh one does.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"prop"
	"prop/internal/jobs"
	"prop/internal/obs"
)

// Journaled payload kinds.
const (
	kindPartition   = "partition"
	kindRepartition = "repartition"
)

// jobPayload is the serialized request journaled with every async job:
// the query string carrying the knobs plus the raw body — for a
// partition job the netlist bytes (ContentType selects the format), for
// a repartition job the JSON repartitionRequest.
type jobPayload struct {
	Kind        string `json:"kind"`
	Query       string `json:"query,omitempty"`
	ContentType string `json:"content_type,omitempty"`
	Body        []byte `json:"body,omitempty"`
}

// requestFromPayload re-decodes the journaled query knobs. The netlist
// body is deliberately not parsed here — the executor does that, so
// recovery can re-queue jobs without paying for every netlist up front.
func (s *server) requestFromPayload(pl *jobPayload) (*partitionRequest, error) {
	vals, err := url.ParseQuery(pl.Query)
	if err != nil {
		return nil, fmt.Errorf("payload query: %w", err)
	}
	return s.decodeQueryValues(vals)
}

// traceBuf is a concurrency-safe sink for a job's JSONL trace. The
// tracer serializes its own writes, but /debug/trace/{id} reads while
// the job may still be emitting.
type traceBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (t *traceBuf) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Write(p)
}

func (t *traceBuf) snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buf.Bytes()...)
}

// jobRuntime is the volatile half of one async job.
type jobRuntime struct {
	ctx      context.Context
	cancel   context.CancelFunc
	trace    *traceBuf     // non-nil iff submitted with ?trace=...
	progress *obs.Progress // live-progress sink, attached to the job's tracer
	// moveWorkers is the effective parallel-move-loop worker count the
	// job runs with (0 = serial move loop), surfaced in job views.
	moveWorkers int
	traceLevel  prop.TraceLevel
	submitted   time.Time
	// onDone, when non-nil, is called with the final durable record once
	// the job reaches a terminal state (the batch streaming hook).
	onDone func(jobs.Job)
}

// runtimeTable maps job IDs to their volatile state. Entries are dropped
// when the store evicts the job.
type runtimeTable struct {
	mu sync.Mutex
	m  map[string]*jobRuntime
}

func newRuntimeTable() *runtimeTable { return &runtimeTable{m: map[string]*jobRuntime{}} }

func (t *runtimeTable) put(id string, rt *jobRuntime) {
	t.mu.Lock()
	t.m[id] = rt
	t.mu.Unlock()
}

func (t *runtimeTable) get(id string) *jobRuntime {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

func (t *runtimeTable) drop(id string) {
	t.mu.Lock()
	rt := t.m[id]
	delete(t.m, id)
	t.mu.Unlock()
	if rt != nil {
		rt.cancel()
	}
}

// jobView is the API shape of one job, durable record plus live runtime
// state.
type jobView struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant,omitempty"`
	State  jobs.State `json:"state"`
	// MoveWorkers is the effective parallel-move-loop worker count the job
	// runs with (0 = serial move loop).
	MoveWorkers int `json:"move_workers"`
	// Requeued counts crash-recovery replays of this job.
	Requeued int                   `json:"requeued,omitempty"`
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
	Error    string                `json:"error,omitempty"`
	Result   json.RawMessage       `json:"result,omitempty"`
}

// view assembles the API shape of a durable job record: live progress
// while it runs, the raw result bytes once done.
func (s *server) view(j jobs.Job) jobView {
	v := jobView{ID: j.ID, Tenant: j.Tenant, State: j.State, Requeued: j.Requeued, Error: j.Error}
	if rt := s.rt.get(j.ID); rt != nil {
		v.MoveWorkers = rt.moveWorkers
		if !j.State.Terminal() {
			p := rt.progress.Snapshot()
			v.Progress = &p
		}
	}
	if len(j.Result) > 0 {
		v.Result = json.RawMessage(j.Result)
	}
	return v
}

// submitPayload journals one async job and dispatches it through the
// fair-share scheduler. It owns the 429-on-full bookkeeping; the HTTP
// wrappers turn the error into a response.
func (s *server) submitPayload(tenant string, pl jobPayload, req *partitionRequest, runID string, onDone func(jobs.Job)) (jobs.Job, error) {
	raw, err := json.Marshal(pl)
	if err != nil {
		return jobs.Job{}, err
	}
	j, err := s.store.Submit(tenant, raw)
	if err != nil {
		if err == jobs.ErrBusy {
			s.mBusy.Inc()
		}
		return jobs.Job{}, err
	}
	s.startJob(j, req, runID, onDone)
	return j, nil
}

// startJob builds the volatile runtime for an accepted job and enqueues
// it for execution.
func (s *server) startJob(j jobs.Job, req *partitionRequest, runID string, onDone func(jobs.Job)) {
	ctx, cancel := context.WithCancel(obs.WithRunID(s.baseCtx, runID))
	rt := &jobRuntime{
		ctx:         ctx,
		cancel:      cancel,
		progress:    &obs.Progress{},
		moveWorkers: req.opts.MoveWorkers,
		traceLevel:  req.traceLevel,
		submitted:   time.Now(),
		onDone:      onDone,
	}
	if req.traced {
		rt.trace = &traceBuf{}
	}
	s.rt.put(j.ID, rt)
	s.mJobs.Inc()
	s.mJobsUp.Add(1)
	tenant := j.Tenant
	if !s.sched.Enqueue(tenant, func() { s.executeJob(j.ID, tenant) }) {
		// The scheduler is closed (drain raced the submit); the job slot is
		// already journaled, so record the refusal durably.
		s.mJobsUp.Add(-1)
		s.store.Transition(j.ID, jobs.Pending, jobs.Cancelled, nil)
		cancel()
	}
}

// finishJob fires the terminal-state hook with the final durable record.
func (s *server) finishJob(id, tenant string, rt *jobRuntime) {
	s.mTenantDone.With(tenant).Inc()
	if rt.onDone == nil {
		return
	}
	j, ok := s.store.Get(id)
	if !ok {
		// Evicted between the transition and here; synthesize the minimum.
		j = jobs.Job{ID: id, State: jobs.Cancelled}
	}
	rt.onDone(j)
}

// executeJob drives one queued job to a terminal state: re-parse the
// journaled payload, run the engine under the job's tracer, and journal
// the outcome. Recovered jobs take exactly this path too.
func (s *server) executeJob(id, tenant string) {
	defer s.mJobsUp.Add(-1)
	rt := s.rt.get(id)
	if rt == nil {
		// The job was evicted while queued (TTL'd cancel); nothing to run.
		s.store.Transition(id, jobs.Pending, jobs.Cancelled, nil)
		return
	}
	defer rt.cancel()
	runID := obs.RunID(rt.ctx)
	s.mQueueWait.Observe(tenant, float64(time.Since(rt.submitted))/float64(time.Millisecond))
	if !s.store.Transition(id, jobs.Pending, jobs.Running, nil) {
		// Cancelled while queued.
		s.log.Info("job state", "job", id, "state", jobs.Cancelled, "run_id", runID)
		s.finishJob(id, tenant, rt)
		return
	}
	s.log.Info("job state", "job", id, "state", jobs.Running, "run_id", runID)
	j, ok := s.store.Get(id)
	if !ok {
		return
	}

	var pl jobPayload
	var req *partitionRequest
	err := json.Unmarshal(j.Payload, &pl)
	if err == nil {
		req, err = s.requestFromPayload(&pl)
	}
	if err != nil {
		s.mErrors.Inc()
		s.store.Transition(id, jobs.Running, jobs.Failed, func(j *jobs.Job) { j.Error = err.Error() })
		s.log.Warn("job state", "job", id, "state", jobs.Failed, "error", err.Error(), "run_id", runID)
		s.finishJob(id, tenant, rt)
		return
	}

	// Every job runs under a tracer: a traced submission records its JSONL
	// trajectory for /debug/trace/{id}, everything else traces into the
	// discard sink — either way the tracer drives the job's live-progress
	// snapshot (GET /v1/jobs/{id}, /debug/runs) and the per-phase duration
	// histograms. Pass level, because the engine only emits the pass events
	// that advance the progress view when the tracer asks for them.
	var sink io.Writer = io.Discard
	lvl := prop.TracePasses
	if rt.trace != nil {
		sink, lvl = rt.trace, rt.traceLevel
		// Label the job's trace spans with the job ID so the JSONL served
		// at /debug/trace/{id} self-identifies; the run ID still ties the
		// job to its request logs.
		req.opts.TraceID = id
	}
	tr := prop.NewTracer(sink, lvl).WithProgress(rt.progress).WithPhaseHook(s.observePhase)

	start := time.Now()
	result, summary, err := s.runPayload(rt.ctx, &pl, req, runID, tr)
	elapsedMS := float64(time.Since(start)) / float64(time.Millisecond)
	if s.slowRun > 0 && time.Since(start) > s.slowRun {
		s.log.Warn("slow run", "job", id, "algo", string(req.opts.Algorithm),
			"elapsed_ms", elapsedMS,
			"threshold_ms", float64(s.slowRun)/float64(time.Millisecond), "run_id", runID)
	}
	if err != nil {
		to := jobs.Failed
		if rt.ctx.Err() == context.Canceled {
			to = jobs.Cancelled
		}
		s.mErrors.Inc()
		s.store.Transition(id, jobs.Running, to, func(j *jobs.Job) { j.Error = err.Error() })
		s.log.Warn("job state", "job", id, "state", to, "error", err.Error(),
			"elapsed_ms", elapsedMS, "run_id", runID)
		s.finishJob(id, tenant, rt)
		return
	}
	s.store.Transition(id, jobs.Running, jobs.Done, func(j *jobs.Job) { j.Result = result })
	s.log.Info("job state", "job", id, "state", jobs.Done,
		"algo", summary.Algorithm, "move_workers", rt.moveWorkers, "passes", summary.Passes,
		"cut_cost", summary.CutCost, "cut_nets", summary.CutNets,
		"elapsed_ms", elapsedMS, "run_id", runID)
	s.finishJob(id, tenant, rt)
}

// runPayload executes a journaled payload and returns the marshaled
// result plus the partition summary for logging.
func (s *server) runPayload(ctx context.Context, pl *jobPayload, req *partitionRequest, runID string, tr *prop.Tracer) ([]byte, *partitionResponse, error) {
	switch pl.Kind {
	case kindPartition:
		nl, err := parseNetlist(pl.ContentType, pl.Body)
		if err != nil {
			return nil, nil, fmt.Errorf("netlist: %w", err)
		}
		req.netlist = nl
		resp, err := s.run(ctx, req, runID, tr)
		if err != nil {
			return nil, nil, err
		}
		raw, err := json.Marshal(resp)
		return raw, resp, err
	case kindRepartition:
		var body repartitionRequest
		if err := json.Unmarshal(pl.Body, &body); err != nil {
			return nil, nil, fmt.Errorf("body: %w", err)
		}
		req.opts.Tracer = tr
		resp, _, err := s.runRepartition(ctx, req, &body, runID)
		if err != nil {
			return nil, nil, err
		}
		raw, err := json.Marshal(resp)
		return raw, &resp.partitionResponse, err
	}
	return nil, nil, fmt.Errorf("unknown payload kind %q", pl.Kind)
}

// resume re-queues the non-terminal jobs the journal replay recovered.
// Each gets a fresh run ID and runtime; the payload re-parse happens in
// the executor, same as a live submission.
func (s *server) resume(recovered []jobs.Job) {
	for _, j := range recovered {
		var pl jobPayload
		var req *partitionRequest
		err := json.Unmarshal(j.Payload, &pl)
		if err == nil {
			req, err = s.requestFromPayload(&pl)
		}
		if err != nil {
			s.store.Transition(j.ID, jobs.Pending, jobs.Failed, func(j *jobs.Job) { j.Error = err.Error() })
			s.log.Warn("job recovery failed", "job", j.ID, "error", err.Error())
			continue
		}
		s.log.Info("job recovered", "job", j.ID, "tenant", j.Tenant, "requeued", j.Requeued)
		s.startJob(j, req, obs.NewID(), nil)
	}
}

func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.gate(w, r, true)
	if !ok {
		return
	}
	body, err := io.ReadAll(s.limitBody(w, r))
	if err != nil {
		s.failParse(w, err)
		return
	}
	req, err := s.decodeQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Parse the netlist before accepting: a malformed submission is
	// rejected up front, not journaled and failed asynchronously.
	ct := r.Header.Get("Content-Type")
	if _, err := parseNetlist(ct, body); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("netlist: %w", err))
		return
	}
	runID := obs.RunID(r.Context())
	pl := jobPayload{Kind: kindPartition, Query: r.URL.RawQuery, ContentType: ct, Body: body}
	j, err := s.submitPayload(tenant, pl, req, runID, nil)
	if err == jobs.ErrBusy {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, fmt.Errorf("job queue full (%d in flight)", s.store.MaxActive()))
		return
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.log.Info("job accepted", "job", j.ID, "tenant", tenant, "state", jobs.Pending,
		"traced", req.traced, "run_id", runID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": string(jobs.Pending), "tenant": tenant})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleJobList lists retained jobs, newest last; ?tenant= filters.
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	list := s.store.List(tenant)
	views := make([]jobView, 0, len(list))
	for _, j := range list {
		views = append(views, s.view(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.Get(id); !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	// Pending jobs flip straight to cancelled; running jobs get their
	// context cancelled and the executor records the final state.
	s.store.Transition(id, jobs.Pending, jobs.Cancelled, nil)
	if rt := s.rt.get(id); rt != nil {
		rt.cancel()
	}
	s.log.Info("job cancel requested", "job", id, "run_id", obs.RunID(r.Context()))
	j, _ := s.store.Get(id)
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleRunsList lists every in-flight (pending or running) job with its
// live-progress snapshot, oldest submission first.
func (s *server) handleRunsList(w http.ResponseWriter, _ *http.Request) {
	inflight := s.store.Inflight()
	views := make([]jobView, 0, len(inflight))
	for _, j := range inflight {
		views = append(views, s.view(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

// handleTraceGet serves the JSONL trace of a traced job.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.Get(id); !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	rt := s.rt.get(id)
	if rt == nil || rt.trace == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("job %q was not submitted with ?trace=", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(rt.trace.snapshot())
}
