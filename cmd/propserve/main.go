// Command propserve serves the partitioning engine over HTTP.
//
// Usage:
//
//	propserve [-addr :8080] [-par 8] [-timeout 60s]
//
// Endpoints:
//
//	POST /v1/partition    partition a netlist synchronously; the request
//	                      body is the netlist (.hgr text, or the JSON
//	                      netlist format with Content-Type:
//	                      application/json) and query parameters select
//	                      algo, runs, seed, k, r1, r2, par, timeout_ms
//	POST /v1/jobs         same request, asynchronously; returns a job id
//	GET  /v1/jobs/{id}    job state and, when done, the result
//	DELETE /v1/jobs/{id}  cancel a pending or running job
//	GET  /healthz         liveness probe
//	GET  /metrics         JSON metrics: jobs in flight, runs completed,
//	                      cut-size histogram, p50/p99 latency
//
// Example:
//
//	curl -s -X POST --data-binary @circuit.hgr \
//	    'localhost:8080/v1/partition?algo=prop&runs=20&seed=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		par     = flag.Int("par", runtime.GOMAXPROCS(0), "max worker goroutines per partition request")
		timeout = flag.Duration("timeout", 60*time.Second, "default per-request compute budget")
	)
	flag.Parse()

	s := newServer(*par, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "propserve: listening on %s (par %d, timeout %s)\n", *addr, *par, *timeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "propserve:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "propserve: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "propserve: shutdown:", err)
			os.Exit(1)
		}
	}
}
