// Command propserve serves the partitioning engine over HTTP.
//
// Usage:
//
//	propserve [-addr :8080] [-par 8] [-timeout 60s] [-slow-run 0]
//	          [-max-jobs 64] [-job-history 256] [-job-ttl 15m] [-cache 128]
//	          [-journal DIR] [-sched-workers N] [-tenant-rate 0]
//	          [-tenant-burst 0] [-max-body 67108864] [-batch-max 64]
//	          [-drain-timeout 15s] [-log-level info] [-log-format text]
//
// Endpoints:
//
//	POST /v1/partition      partition a netlist synchronously; the request
//	                        body is the netlist (.hgr text, or the JSON
//	                        netlist format with Content-Type:
//	                        application/json) and query parameters select
//	                        algo, runs, seed, k, r1, r2, par, timeout_ms.
//	                        Results are cached by content fingerprint
//	                        (netlist + result-determining options + k, up
//	                        to -cache entries, LRU): a repeated identical
//	                        request replays the exact bytes of the first
//	                        response, marked with an X-Cache: hit header.
//	POST /v1/repartition    incremental path: the JSON body carries a
//	                        netlist delta plus the base state — either
//	                        {"netlist": ..., "sides": [...], "delta": ...}
//	                        inline or {"base_job": "j3", "delta": ...}
//	                        referencing a finished 2-way job — and the
//	                        server applies the delta, projects the sides
//	                        through it, and warm-starts PROP from that
//	                        state instead of solving from scratch
//	POST /v1/jobs           same request as /v1/partition, asynchronously;
//	                        returns a job id. Add trace=pass (or
//	                        run/move/1) to record a JSONL convergence
//	                        trace of the job. At most -max-jobs jobs may
//	                        be pending or running at once; past that the
//	                        submit is refused with 429 + Retry-After.
//	                        With -journal set, every accepted job is
//	                        fsynced to an append-only NDJSON journal
//	                        before the 202, and a restart re-queues
//	                        whatever had not finished.
//	POST /v1/batch          many items in one request: {"items": [...]},
//	                        each item a {"netlist": ...} partition or a
//	                        {"delta": ..., "base_job"|"netlist"+"sides"}
//	                        repartition, sharing the query-string knobs.
//	                        Each item becomes a durable job; the response
//	                        streams one NDJSON line per item in completion
//	                        order, flushed as each finishes. Disconnecting
//	                        mid-stream cancels the unfinished items.
//	GET  /v1/jobs           list retained jobs; ?tenant= filters
//	GET  /v1/jobs/{id}      job state and, when done, the result; while the
//	                        job runs the reply carries a live "progress"
//	                        snapshot (current phase, run, pass, best cut so
//	                        far) updated as the engine advances. Finished
//	                        jobs are evicted after -job-ttl, or earlier
//	                        once -job-history newer ones finished
//	DELETE /v1/jobs/{id}    cancel a pending or running job
//	GET  /healthz           liveness probe (503 while draining)
//	GET  /metrics           Prometheus text metrics (jobs in flight, runs
//	                        completed, cut-size and passes-per-run
//	                        histograms, per-phase duration histograms
//	                        labeled by phase name, per-tenant admission /
//	                        rejection / completion counters and queue
//	                        depths, p50/p99 latency); ?format=json for the
//	                        JSON export
//	GET  /debug/runs        in-flight jobs with their progress snapshots
//	GET  /debug/trace/{id}  JSONL trace of a job submitted with trace=
//	GET  /debug/pprof/      CPU/heap/goroutine profiles (net/http/pprof)
//
// Multi-tenancy: requests carry an X-Tenant header (absent = the
// "default" tenant). Async and batch work is dispatched deficit-round-
// robin across tenants by -sched-workers slots, so one tenant's flood
// cannot starve another; -tenant-rate/-tenant-burst add a per-tenant
// token-bucket admission quota answered with 429 when exceeded. Request
// bodies larger than -max-body are refused with 413.
//
// Every request is logged with a run ID that also labels the job's
// engine-level logs and trace events. Job completion logs carry the
// algorithm, move-worker count, and total improvement passes; jobs whose
// compute exceeds -slow-run (0 disables) log a warning. On SIGTERM or
// SIGINT the server drains: new compute POSTs get 503 while in-flight
// jobs finish (up to -drain-timeout), then the journal is flushed and
// the process exits.
//
// Example:
//
//	curl -s -X POST --data-binary @circuit.hgr \
//	    'localhost:8080/v1/partition?algo=prop&runs=20&seed=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

// buildLogger constructs the process logger from the -log-* flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (use :0 for a free port; the actual address is printed)")
		par          = flag.Int("par", runtime.GOMAXPROCS(0), "max worker goroutines per partition request")
		timeout      = flag.Duration("timeout", 60*time.Second, "default per-request compute budget")
		slowRun      = flag.Duration("slow-run", 0, "warn when a job's compute exceeds this (0 = disabled)")
		maxJobs      = flag.Int("max-jobs", 64, "max pending+running async jobs (-1 = unbounded)")
		jobHistory   = flag.Int("job-history", 256, "finished jobs retained for GET (-1 = unbounded)")
		jobTTL       = flag.Duration("job-ttl", 15*time.Minute, "finished jobs evicted after this (-1s = never)")
		cacheSize    = flag.Int("cache", 128, "partition result-cache entries (-1 = disabled)")
		journalDir   = flag.String("journal", "", "job journal directory (empty = no durability)")
		schedWorkers = flag.Int("sched-workers", 0, "concurrent async job slots (0 = GOMAXPROCS, min 2)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant admission quota, requests/sec (0 = unlimited)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant admission burst (0 = max(1, rate))")
		maxBody      = flag.Int64("max-body", 64<<20, "request body limit in bytes")
		batchMax     = flag.Int("batch-max", 64, "max items per /v1/batch request (-1 = unbounded)")
		drainTO      = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight jobs")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "propserve:", err)
		os.Exit(2)
	}
	s, err := newServer(serverConfig{
		maxPar:       *par,
		defTimeout:   *timeout,
		slowRun:      *slowRun,
		maxJobs:      *maxJobs,
		jobHistory:   *jobHistory,
		jobTTL:       *jobTTL,
		cacheSize:    *cacheSize,
		journalDir:   *journalDir,
		schedWorkers: *schedWorkers,
		tenantRate:   *tenantRate,
		tenantBurst:  *tenantBurst,
		maxBody:      *maxBody,
		batchMax:     *batchMax,
	}, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "propserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before announcing so ":0" callers can read the real port
	// from the line below.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "propserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "propserve: listening on %s (par %d, timeout %s)\n", ln.Addr(), *par, *timeout)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "propserve:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "propserve: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		// New compute POSTs answer 503 from here on; established requests
		// finish under the HTTP shutdown, async jobs under the scheduler
		// drain, then the journal is compacted and closed.
		s.beginDrain()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "propserve: shutdown:", err)
		}
		if err := s.drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "propserve: drain:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "propserve: drained cleanly")
	}
}
