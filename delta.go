package prop

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"prop/internal/delta"
	"prop/internal/obs"
	"prop/internal/partition"
	"prop/internal/refine"
	"prop/internal/warm"
)

// Delta is a typed netlist edit script (an ECO — engineering change
// order): add/remove nodes and nets, reweight nodes, re-pin/recost nets.
// Node references use the combined ID space [0, NumNodes+len(AddNodes)):
// IDs ≥ NumNodes name the delta's own added nodes in order. Deltas
// serialize as JSON; see Netlist.ApplyDelta and Repartition.
type Delta = delta.Delta

// DeltaNodeAdd, DeltaNodeWeight, DeltaNetAdd, DeltaNetCost and
// DeltaNetRepin are the Delta entry types.
type (
	DeltaNodeAdd    = delta.NodeAdd
	DeltaNodeWeight = delta.NodeWeight
	DeltaNetAdd     = delta.NetAdd
	DeltaNetCost    = delta.NetCost
	DeltaNetRepin   = delta.NetRepin
)

// DeltaMapping records how node and net IDs of the base netlist translate
// into the netlist a Delta produced, and is what ProjectSides consumes.
type DeltaMapping = delta.Mapping

// SideUnassigned marks a node with no side yet in Options.Initial; the
// warm start places such nodes greedily by connectivity.
const SideUnassigned = partition.Unassigned

// ApplyDelta validates d against the netlist and returns the edited
// netlist plus the old→new ID mapping. Deltas that only reweight nodes or
// recost nets share the base's internal arenas (Θ(nodes+nets), no
// adjacency rebuild); structural deltas rebuild in one pass. Base nets
// that node removal leaves with fewer than two pins are dropped (counted
// in the mapping).
func (n *Netlist) ApplyDelta(d *Delta) (*Netlist, *DeltaMapping, error) {
	h, mp, err := d.Apply(n.h)
	if err != nil {
		return nil, nil, err
	}
	return &Netlist{h}, mp, nil
}

// Fingerprint returns a 64-bit content hash of everything that determines
// partitioning results: structure, net costs and node weights. Symbolic
// names are excluded. Combined with Options.Fingerprint it keys the
// result cache.
func (n *Netlist) Fingerprint() uint64 { return n.h.Fingerprint() }

// Fingerprint returns a 64-bit content hash of every option that affects
// partitioning results: algorithm, balance, runs, seed, lookahead depth,
// clustered/warm start, PROP/Flow/ML parameter overrides and the move-loop
// selection (serial vs parallel round loop; the worker count itself is
// excluded, as every positive count is bit-identical). Parallel, OnRun,
// Tracer and TraceID are excluded — results are bit-identical across
// their values by construction.
func (o Options) Fingerprint() uint64 {
	f := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = f.Write(b[:])
	}
	_, _ = f.Write([]byte(o.Algorithm))
	put(math.Float64bits(o.R1))
	put(math.Float64bits(o.R2))
	put(uint64(o.Runs))
	put(uint64(o.Seed))
	put(uint64(o.LADepth))
	if o.ClusteredStart {
		put(1)
	} else {
		put(0)
	}
	if o.Initial != nil {
		put(uint64(len(o.Initial)))
		_, _ = f.Write(o.Initial)
	}
	if p := o.PROP; p != nil {
		put(math.Float64bits(p.PInit))
		put(math.Float64bits(p.PMin))
		put(math.Float64bits(p.PMax))
		put(math.Float64bits(p.GLo))
		put(math.Float64bits(p.GUp))
		put(uint64(p.Refinements))
		put(uint64(p.TopK))
		if p.DeterministicInit {
			put(1)
		}
	}
	if p := o.Flow; p != nil {
		put(uint64(p.Radius))
		put(math.Float64bits(p.MaxFrac))
		put(uint64(p.Rounds))
	}
	// The parallel move loop is bit-identical at every positive worker
	// count but follows a different trajectory than the serial loop, so
	// only the on/off bit participates — all positive MoveWorkers values
	// intentionally collide. Appended last so pre-existing fingerprints
	// (MoveWorkers == 0) are unchanged.
	if o.MoveWorkers > 0 {
		put(2)
	}
	// ML hierarchy knobs change the result, so they participate; appended
	// last so pre-existing fingerprints (ML == nil) are unchanged.
	if p := o.ML; p != nil {
		_, _ = f.Write([]byte(p.Mode))
		put(uint64(p.CoarsestNodes))
		put(uint64(p.InitialRuns))
		put(uint64(p.UncontractBatch))
	}
	return f.Sum64()
}

// ProjectSides projects a side assignment of the base netlist through the
// delta mapping: surviving nodes keep their side at their new ID, added
// nodes come back as SideUnassigned. The result is sized for the edited
// netlist and is exactly what Options.Initial expects.
func ProjectSides(mp *DeltaMapping, oldSides []uint8) ([]uint8, error) {
	return mp.ProjectSides(oldSides)
}

// Repartition is the incremental path in one call: apply the delta to the
// base netlist, project the previous side assignment through the mapping,
// and warm-start the partitioner from that state (Options.Initial). For
// the default PROP algorithm the result is then polished by alternating
// FM and deterministic-init PROP until neither improves the cut — a
// cross-heuristic fixpoint that recovers most of the quality a cold
// multi-start portfolio buys, at a fraction of its time. It returns the
// edited netlist alongside its partition. PROP's prefix-rollback passes
// never end worse than their starting cut, so the warm result never
// regresses below the projected previous solution.
func Repartition(base *Netlist, prevSides []uint8, d *Delta, o Options) (*Netlist, Result, error) {
	return RepartitionCtx(context.Background(), base, prevSides, d, o)
}

// RepartitionCtx is Repartition under a context (see PartitionCtx).
func RepartitionCtx(ctx context.Context, base *Netlist, prevSides []uint8, d *Delta, o Options) (*Netlist, Result, error) {
	applyStart := time.Now()
	edited, mp, err := base.ApplyDelta(d)
	if err != nil {
		return nil, Result{}, err
	}
	o.Tracer.EmitDeltaApply(obs.DeltaApply{
		ID:         o.TraceID,
		Structural: mp.Structural,
		Nodes:      mp.NewNodes,
		Nets:       mp.NewNets,
		Collapsed:  mp.CollapsedNets,
		Dur:        time.Since(applyStart),
	})
	initial, err := mp.ProjectSides(prevSides)
	if err != nil {
		return nil, Result{}, err
	}
	o.Initial = initial
	res, err := PartitionCtx(ctx, edited, o)
	if err != nil {
		return nil, Result{}, err
	}
	if partner, ok := polishPartner(o.Algorithm); ok {
		bal, err := o.balance()
		if err != nil {
			return nil, Result{}, err
		}
		polishStart := time.Now()
		// Trace-tag polish stages with the run index past the portfolio.
		p, err := warm.PolishWith(edited.h, res.Sides, res.CutCost, res.CutNets,
			propConfig(bal, o, res.Runs),
			refine.Options{Algorithm: partner, Balance: bal, LADepth: o.LADepth,
				MoveWorkers: o.MoveWorkers, Flow: flowParams(o),
				Tracer: o.Tracer, TraceRun: res.Runs})
		if err != nil {
			return nil, Result{}, err
		}
		if p.CutCost < res.CutCost {
			res.Sides, res.CutCost, res.CutNets = p.Sides, p.CutCost, p.CutNets
		}
		res.Elapsed += time.Since(polishStart)
	}
	return edited, res, nil
}

// polishPartner maps the requested algorithm to the engine alternated with
// deterministic-init PROP during the Repartition polish fixpoint. Every
// locked-move algorithm polishes — the warm start makes its passes cheap —
// with itself as the partner so the final sides are a local optimum of the
// move system the caller asked for; PROP keeps the historical FM-tree
// partner. Non-move algorithms (spectral, placement, annealing, ...) have
// no locked-move polish notion and return ok = false.
func polishPartner(a Algorithm) (string, bool) {
	switch a {
	case "", AlgoPROP, AlgoFMTree:
		return "fm-tree", true
	case AlgoFM:
		return "fm", true
	case AlgoLA:
		return "la", true
	case AlgoKL:
		return "kl", true
	case AlgoSK:
		return "sk", true
	case AlgoFlow:
		// AlgoFlow already polishes with the corridor max-flow stage during
		// its runs; the warm fixpoint keeps the same partner.
		return "flow", true
	}
	return "", false
}
