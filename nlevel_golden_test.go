package prop_test

import (
	"testing"

	"prop"
)

// TestGoldenCutsNLevel pins the n-level multilevel path (ML Mode
// "nlevel") the same way the other engines pin theirs, and pins the
// V-cycle MLPROP results on the same circuits/seed alongside — the
// acceptance contract is twofold: existing V-cycle behavior stays
// bit-identical, and the n-level cut is never worse than the V-cycle cut
// on any of the golden five.
func TestGoldenCutsNLevel(t *testing.T) {
	cases := []struct {
		circuit string
		vcycle  golden
		nlevel  golden
	}{
		{"balu", golden{40, 0, 0xfcfd68f921f5e006}, golden{37, 0, 0x565bcda200439bf4}},
		{"struct", golden{34, 0, 0x3b8edd5d07c6765}, golden{23, 0, 0x8baf23f8a91b8a3a}},
		{"p2", golden{109, 0, 0x87c64ea070eb5157}, golden{103, 0, 0x80f50ceaa1df7897}},
		{"industry2", golden{480, 0, 0x537d2ad814ec3a18}, golden{443, 0, 0x151e0224aaa5b990}},
		{"gen600", golden{47, 0, 0xa962787709707676}, golden{45, 0, 0x772b41dfdc3aaab4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.circuit, func(t *testing.T) {
			if testing.Short() && tc.circuit == "industry2" {
				t.Skip("short mode")
			}
			n := nlevelCircuit(t, tc.circuit)
			checkMode(t, n, nil, tc.vcycle)
			checkMode(t, n, &prop.MLParams{Mode: "nlevel"}, tc.nlevel)
			if tc.nlevel.cost > tc.vcycle.cost {
				t.Errorf("n-level cut %g worse than V-cycle's %g", tc.nlevel.cost, tc.vcycle.cost)
			}
		})
	}
}

func nlevelCircuit(t *testing.T, name string) *prop.Netlist {
	t.Helper()
	if name == "gen600" {
		n, err := prop.Generate(prop.GenParams{Nodes: 600, Nets: 660, Pins: 2300, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n, err := prop.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// checkMode mirrors check() for the single-run MLPROP engine: golden
// equality, an independent recount, and Parallel no-op bit-identity.
func checkMode(t *testing.T, n *prop.Netlist, ml *prop.MLParams, want golden) {
	t.Helper()
	res, err := prop.Partition(n, prop.Options{Algorithm: prop.AlgoMLPROP, Seed: 7, ML: ml})
	if err != nil {
		t.Fatal(err)
	}
	got := golden{res.CutCost, res.BestRun, sideHash(res.Sides)}
	if got != want {
		t.Errorf("got {cost:%g best:%d hash:%#x}, want {cost:%g best:%d hash:%#x}",
			got.cost, got.bestRun, got.hash, want.cost, want.bestRun, want.hash)
	}
	if cost, _, err := prop.Verify(n, res.Sides, prop.Options{}); err != nil || cost != res.CutCost {
		t.Errorf("independent recount %g (err %v) vs reported %g", cost, err, res.CutCost)
	}
	par, err := prop.Partition(n, prop.Options{Algorithm: prop.AlgoMLPROP, Seed: 7, ML: ml, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pg := (golden{par.CutCost, par.BestRun, sideHash(par.Sides)}); pg != want {
		t.Errorf("Parallel=4: got {cost:%g best:%d hash:%#x}, want {cost:%g best:%d hash:%#x}",
			pg.cost, pg.bestRun, pg.hash, want.cost, want.bestRun, want.hash)
	}
}
