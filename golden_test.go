package prop_test

import (
	"io"
	"testing"

	"prop"
)

// sideHash is FNV-1a over the side-assignment bytes — a compact fingerprint
// of the exact partition, not just its cut value.
func sideHash(sides []uint8) uint64 {
	const (
		basis = 1469598103934665603
		prime = 1099511628211
	)
	h := uint64(basis)
	for _, s := range sides {
		h ^= uint64(s)
		h *= prime
	}
	return h
}

// golden records the full pre-CSR-migration outcome of a deterministic
// multi-start run: winning cut cost, winning run index and the FNV-1a hash
// of the winning side assignment.
type golden struct {
	cost    float64
	bestRun int
	hash    uint64
}

// TestGoldenCutsAcrossMigration pins PROP and FM multi-start results to the
// values produced by the slice-of-slices hypergraph representation before
// the flat-CSR migration. Any float reordering, iteration-order change or
// adjacency bug in the CSR/incremental-refinement path shows up here as a
// changed cut, winner or side hash.
func TestGoldenCutsAcrossMigration(t *testing.T) {
	cases := []struct {
		circuit string
		prop    golden
		fm      golden
	}{
		{"balu", golden{51, 0, 0x951374aafaf280e4}, golden{56, 2, 0xe1aa91b0c00779e4}},
		{"struct", golden{44, 1, 0x1c610d4b7893512c}, golden{55, 1, 0x111308ef60ac7128}},
		{"p2", golden{123, 2, 0xb9b315385cfb9569}, golden{155, 2, 0x6058fc113e79d67f}},
		{"industry2", golden{553, 1, 0x5ad230a75a0b9a7f}, golden{710, 2, 0x1ff487b9b8cec5ee}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.circuit, func(t *testing.T) {
			if testing.Short() && tc.circuit == "industry2" {
				t.Skip("short mode")
			}
			n, err := prop.Benchmark(tc.circuit)
			if err != nil {
				t.Fatal(err)
			}
			check(t, n, prop.AlgoPROP, 3, 7, tc.prop)
			check(t, n, prop.AlgoFM, 3, 7, tc.fm)
		})
	}
}

// TestGoldenCutsGenerated covers the window-model generator path with more
// runs, exercising the best-run tie-break across a longer portfolio.
func TestGoldenCutsGenerated(t *testing.T) {
	n, err := prop.Generate(prop.GenParams{Nodes: 600, Nets: 660, Pins: 2300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	check(t, n, prop.AlgoPROP, 5, 11, golden{48, 4, 0xf732c54e9365b36e})
	check(t, n, prop.AlgoFM, 5, 11, golden{55, 0, 0x48db48f4509eda0a})
}

func check(t *testing.T, n *prop.Netlist, algo prop.Algorithm, runs int, seed int64, want golden) {
	t.Helper()
	res, err := prop.Partition(n, prop.Options{Algorithm: algo, Runs: runs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	got := golden{res.CutCost, res.BestRun, sideHash(res.Sides)}
	if got != want {
		t.Errorf("%s: got {cost:%g best:%d hash:%#x}, want {cost:%g best:%d hash:%#x}",
			algo, got.cost, got.bestRun, got.hash, want.cost, want.bestRun, want.hash)
	}
	if cost, _, err := prop.Verify(n, res.Sides, prop.Options{}); err != nil || cost != res.CutCost {
		t.Errorf("%s: independent recount %g (err %v) vs reported %g", algo, cost, err, res.CutCost)
	}
	// The portfolio reduction must reproduce the sequential best-of
	// bit-for-bit at any worker count.
	par, err := prop.Partition(n, prop.Options{Algorithm: algo, Runs: runs, Seed: seed, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pg := (golden{par.CutCost, par.BestRun, sideHash(par.Sides)}); pg != want {
		t.Errorf("%s Parallel=4: got {cost:%g best:%d hash:%#x}, want {cost:%g best:%d hash:%#x}",
			algo, pg.cost, pg.bestRun, pg.hash, want.cost, want.bestRun, want.hash)
	}
}

// TestGoldenCutsLASK pins LA and SK multi-start results across the
// move-engine unification, the same way the PROP/FM goldens pin theirs.
// SK's exact pair scan is quadratic per step, so its goldens run only on
// the small circuits.
func TestGoldenCutsLASK(t *testing.T) {
	cases := []struct {
		circuit string
		la      golden
		sk      *golden
	}{
		{"balu", golden{56, 2, 0x86df674c393dbe83}, &golden{52, 0, 0xfe460ae3a9b93a54}},
		{"struct", golden{65, 2, 0x2ffcf6b524ce9570}, &golden{89, 0, 0x4873e6d3b1c068ef}},
		{"p2", golden{150, 2, 0x67e8ad96d734b66d}, nil},
		{"industry2", golden{706, 1, 0x7e02436e812665c}, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.circuit, func(t *testing.T) {
			if testing.Short() && tc.circuit == "industry2" {
				t.Skip("short mode")
			}
			n, err := prop.Benchmark(tc.circuit)
			if err != nil {
				t.Fatal(err)
			}
			check(t, n, prop.AlgoLA, 3, 7, tc.la)
			if tc.sk != nil {
				check(t, n, prop.AlgoSK, 3, 7, *tc.sk)
			}
		})
	}
}

// TestGoldenCutsLASKGenerated mirrors TestGoldenCutsGenerated for LA/SK.
func TestGoldenCutsLASKGenerated(t *testing.T) {
	n, err := prop.Generate(prop.GenParams{Nodes: 600, Nets: 660, Pins: 2300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	check(t, n, prop.AlgoLA, 5, 11, golden{50, 2, 0x29d615c6f6e8e5b4})
	check(t, n, prop.AlgoSK, 5, 11, golden{62, 3, 0xa8dffa790c0eb9db})
}

// TestGoldenCutsFlow pins the PROP→flow composite (corridor max-flow
// polish) the same way the other engines pin theirs, and additionally
// asserts the polish contract against the PROP goldens above: flow's cut is
// never worse, and strictly better on most circuits. check() also covers
// Parallel=1 vs 4 bit-identity and the balance window via prop.Verify.
func TestGoldenCutsFlow(t *testing.T) {
	cases := []struct {
		circuit string
		flow    golden
		prop    float64 // the PROP golden cost on the same runs/seed
	}{
		{"balu", golden{50, 0, 0x1cbb4377981c0924}, 51},
		{"struct", golden{39, 0, 0x932108ed1bfa955a}, 44},
		{"p2", golden{112, 1, 0x63556f45eca600e3}, 123},
		{"industry2", golden{510, 1, 0x3bd3d5ea89a430e0}, 553},
	}
	improved := 0
	for _, tc := range cases {
		tc := tc
		t.Run(tc.circuit, func(t *testing.T) {
			if testing.Short() && tc.circuit == "industry2" {
				t.Skip("short mode")
			}
			n, err := prop.Benchmark(tc.circuit)
			if err != nil {
				t.Fatal(err)
			}
			check(t, n, prop.AlgoFlow, 3, 7, tc.flow)
			if tc.flow.cost > tc.prop {
				t.Errorf("flow cut %g worse than PROP's %g", tc.flow.cost, tc.prop)
			}
		})
		if tc.flow.cost < tc.prop {
			improved++
		}
	}
	if improved < 3 {
		t.Errorf("flow strictly improved only %d/%d benchmark circuits, want ≥ 3", improved, len(cases))
	}
}

// TestGoldenCutsFlowGenerated mirrors TestGoldenCutsGenerated: on this
// instance PROP's portfolio already finds a cut the corridor stage cannot
// beat, so the polish must return it unchanged (identical hash to the PROP
// golden) — the "never worsens" half of the flow contract.
func TestGoldenCutsFlowGenerated(t *testing.T) {
	n, err := prop.Generate(prop.GenParams{Nodes: 600, Nets: 660, Pins: 2300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	check(t, n, prop.AlgoFlow, 5, 11, golden{48, 4, 0xf732c54e9365b36e})
}

// TestGoldenTracingInvariant pins the observation-only contract of the
// tracing subsystem: attaching a tracer — even at move granularity, even
// under a parallel portfolio — must not change the cut, the winning run,
// or a single side bit relative to the untraced golden values.
func TestGoldenTracingInvariant(t *testing.T) {
	n, err := prop.Benchmark("struct")
	if err != nil {
		t.Fatal(err)
	}
	baseline := func(algo prop.Algorithm) golden {
		res, err := prop.Partition(n, prop.Options{Algorithm: algo, Runs: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return golden{res.CutCost, res.BestRun, sideHash(res.Sides)}
	}
	for _, algo := range []prop.Algorithm{prop.AlgoPROP, prop.AlgoFM} {
		want := baseline(algo)
		for _, par := range []int{1, 4} {
			tr := prop.NewTracer(io.Discard, prop.TraceMoves)
			res, err := prop.Partition(n, prop.Options{
				Algorithm: algo, Runs: 3, Seed: 7, Parallel: par,
				Tracer: tr, TraceID: "golden",
			})
			if err != nil {
				t.Fatal(err)
			}
			got := golden{res.CutCost, res.BestRun, sideHash(res.Sides)}
			if got != want {
				t.Errorf("%s par=%d traced: got {cost:%g best:%d hash:%#x}, want {cost:%g best:%d hash:%#x}",
					algo, par, got.cost, got.bestRun, got.hash, want.cost, want.bestRun, want.hash)
			}
			if tr.Events() == 0 {
				t.Errorf("%s par=%d: tracer saw no events", algo, par)
			}
			if err := tr.Err(); err != nil {
				t.Errorf("%s par=%d: tracer error: %v", algo, par, err)
			}
		}
	}
}
