package prop_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"prop"
)

// parTestNetlist builds one moderate instance shared by the parallel
// determinism tests.
func parTestNetlist(t testing.TB) *prop.Netlist {
	t.Helper()
	n, err := prop.Generate(prop.GenParams{Nodes: 600, Nets: 660, Pins: 2300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestParallelDeterminism guards the engine's reduction order: for a fixed
// seed, the multi-start portfolio must return the identical cut AND the
// identical side assignment whether it runs on 1, 4, or NumCPU workers.
func TestParallelDeterminism(t *testing.T) {
	n := parTestNetlist(t)
	for _, algo := range []prop.Algorithm{prop.AlgoPROP, prop.AlgoFM} {
		var ref prop.Result
		for i, par := range []int{1, 4, runtime.NumCPU()} {
			res, err := prop.Partition(n, prop.Options{
				Algorithm: algo, Runs: 12, Seed: 5, Parallel: par,
			})
			if err != nil {
				t.Fatalf("%s par=%d: %v", algo, par, err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if res.CutCost != ref.CutCost || res.CutNets != ref.CutNets || res.BestRun != ref.BestRun {
				t.Errorf("%s par=%d: cut (%g,%d) best run %d; par=1 gave (%g,%d) best run %d",
					algo, par, res.CutCost, res.CutNets, res.BestRun, ref.CutCost, ref.CutNets, ref.BestRun)
			}
			for u := range res.Sides {
				if res.Sides[u] != ref.Sides[u] {
					t.Fatalf("%s par=%d: side of node %d differs from sequential", algo, par, u)
				}
			}
		}
	}
}

// TestParallelDeterminismKWay does the same for recursive k-way, where
// both the portfolio and the recursion tree run concurrently.
func TestParallelDeterminismKWay(t *testing.T) {
	n := parTestNetlist(t)
	var ref prop.KWayResult
	for i, par := range []int{1, 4, runtime.NumCPU()} {
		res, err := prop.KWay(n, 4, prop.Options{
			Algorithm: prop.AlgoFM, Runs: 6, Seed: 3, Parallel: par,
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.CutCost != ref.CutCost || res.CutNets != ref.CutNets {
			t.Errorf("par=%d: cut (%g,%d), par=1 gave (%g,%d)",
				par, res.CutCost, res.CutNets, ref.CutCost, ref.CutNets)
		}
		for u := range res.Parts {
			if res.Parts[u] != ref.Parts[u] {
				t.Fatalf("par=%d: part of node %d differs from sequential", par, u)
			}
		}
	}
}

// TestParallelDeterminismKWayDirect covers the direct k-way portfolio.
func TestParallelDeterminismKWayDirect(t *testing.T) {
	n := parTestNetlist(t)
	var ref prop.KWayResult
	for i, par := range []int{1, 4} {
		res, err := prop.KWayDirect(n, 3, prop.Options{Runs: 6, Seed: 2, Parallel: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.CutCost != ref.CutCost || res.CutNets != ref.CutNets {
			t.Errorf("par=%d: cut (%g,%d), par=1 gave (%g,%d)",
				par, res.CutCost, res.CutNets, ref.CutCost, ref.CutNets)
		}
		for u := range res.Parts {
			if res.Parts[u] != ref.Parts[u] {
				t.Fatalf("par=%d: part of node %d differs", par, u)
			}
		}
	}
}

// TestOnRunHookSeesEveryRun checks the per-run progress hook fires once
// per run under parallel execution.
func TestOnRunHookSeesEveryRun(t *testing.T) {
	n := parTestNetlist(t)
	var runs atomic.Int32
	_, err := prop.Partition(n, prop.Options{
		Algorithm: prop.AlgoFM, Runs: 9, Seed: 1, Parallel: 4,
		OnRun: func(u prop.RunUpdate) {
			if u.CutNets <= 0 {
				t.Errorf("run %d reported degenerate cut %d", u.Run, u.CutNets)
			}
			runs.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 9 {
		t.Errorf("hook fired %d times, want 9", runs.Load())
	}
}

// TestPartitionCtxCancellation: an already-cancelled context aborts
// immediately with its error.
func TestPartitionCtxCancellation(t *testing.T) {
	n := parTestNetlist(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := prop.PartitionCtx(ctx, n, prop.Options{Algorithm: prop.AlgoPROP, Runs: 50, Parallel: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPartitionCtxTimeout: a tiny deadline on a large portfolio surfaces
// DeadlineExceeded rather than a partial result.
func TestPartitionCtxTimeout(t *testing.T) {
	n, err := prop.Generate(prop.GenParams{Nodes: 4000, Nets: 4400, Pins: 15000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = prop.PartitionCtx(ctx, n, prop.Options{Algorithm: prop.AlgoPROP, Runs: 1000, Parallel: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
